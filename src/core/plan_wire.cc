#include "src/core/plan_wire.h"

#include <algorithm>

namespace prospector {
namespace core {
namespace {

uint8_t Cap255(int v) {
  return static_cast<uint8_t>(std::clamp(v, 0, 255));
}

void PutVarint(std::vector<uint8_t>* out, uint32_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

bool GetVarint(const std::vector<uint8_t>& in, size_t* pos, uint32_t* out) {
  uint32_t v = 0;
  int shift = 0;
  while (*pos < in.size() && shift <= 28) {
    const uint8_t b = in[(*pos)++];
    v |= static_cast<uint32_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace

Subplan SubplanFor(const QueryPlan& plan, const net::Topology& topology,
                   int node) {
  Subplan sp;
  sp.proof_carrying = plan.proof_carrying;
  sp.node_selection = plan.kind == PlanKind::kNodeSelection;
  sp.chosen = sp.node_selection && node < static_cast<int>(plan.chosen.size())
                  ? plan.chosen[node] != 0
                  : false;
  sp.k = Cap255(plan.k);
  sp.outgoing_bandwidth =
      node == topology.root() ? 0 : Cap255(plan.bandwidth[node]);
  for (int c : topology.children(node)) {
    if (plan.UsesEdge(c)) {
      sp.child_bandwidth.emplace_back(c, Cap255(plan.bandwidth[c]));
    }
  }
  return sp;
}

std::vector<uint8_t> EncodeSubplan(const Subplan& sp) {
  std::vector<uint8_t> out;
  // Version-conservative: only superplan subplans (per-query entries
  // present) need the versioned form; everything else stays byte-exact
  // with the historical version-0 encoding.
  if (!sp.query_entries.empty()) {
    out.push_back(static_cast<uint8_t>(kSubplanVersionTag | 1));
  }
  uint8_t flags = 0;
  if (sp.proof_carrying) flags |= 1;
  if (sp.node_selection) flags |= 2;
  if (sp.chosen) flags |= 4;
  out.push_back(flags);
  out.push_back(sp.k);
  out.push_back(sp.outgoing_bandwidth);
  out.push_back(Cap255(static_cast<int>(sp.child_bandwidth.size())));
  for (const auto& [child, bw] : sp.child_bandwidth) {
    PutVarint(&out, static_cast<uint32_t>(child));
    out.push_back(bw);
  }
  if (!sp.query_entries.empty()) {
    out.push_back(Cap255(static_cast<int>(sp.query_entries.size())));
    for (const SubplanQueryEntry& e : sp.query_entries) {
      PutVarint(&out, static_cast<uint32_t>(e.query_id));
      out.push_back(e.k);
      out.push_back(e.bandwidth);
    }
  }
  return out;
}

int SubplanWireVersion(const std::vector<uint8_t>& bytes) {
  if (bytes.empty()) return -1;
  // Version-0 flag bytes only use bits 0-2, so 0xC0-prefixed bytes are
  // unambiguously version tags.
  if ((bytes[0] & kSubplanVersionTag) == kSubplanVersionTag) {
    return bytes[0] & static_cast<uint8_t>(~kSubplanVersionTag);
  }
  return 0;
}

Result<Subplan> DecodeSubplan(const std::vector<uint8_t>& bytes) {
  const int version = SubplanWireVersion(bytes);
  if (version < 0) return Status::InvalidArgument("subplan too short");
  if (version > kSubplanWireVersion) {
    return Status::InvalidArgument("unsupported subplan wire version");
  }
  size_t pos = version > 0 ? 1 : 0;
  if (bytes.size() < pos + 4) {
    return Status::InvalidArgument("subplan too short");
  }
  Subplan sp;
  sp.proof_carrying = bytes[pos] & 1;
  sp.node_selection = bytes[pos] & 2;
  sp.chosen = bytes[pos] & 4;
  sp.k = bytes[pos + 1];
  sp.outgoing_bandwidth = bytes[pos + 2];
  const int m = bytes[pos + 3];
  pos += 4;
  for (int i = 0; i < m; ++i) {
    uint32_t child = 0;
    if (!GetVarint(bytes, &pos, &child)) {
      return Status::InvalidArgument("truncated subplan child list");
    }
    if (pos >= bytes.size()) {
      return Status::InvalidArgument("truncated subplan bandwidth");
    }
    sp.child_bandwidth.emplace_back(static_cast<int>(child), bytes[pos++]);
  }
  if (version >= 1) {
    if (pos >= bytes.size()) {
      return Status::InvalidArgument("truncated subplan query count");
    }
    const int nq = bytes[pos++];
    for (int i = 0; i < nq; ++i) {
      uint32_t qid = 0;
      if (!GetVarint(bytes, &pos, &qid)) {
        return Status::InvalidArgument("truncated subplan query id");
      }
      if (pos + 2 > bytes.size()) {
        return Status::InvalidArgument("truncated subplan query entry");
      }
      SubplanQueryEntry e;
      e.query_id = static_cast<int>(qid);
      e.k = bytes[pos++];
      e.bandwidth = bytes[pos++];
      sp.query_entries.push_back(e);
    }
  }
  if (pos != bytes.size()) {
    return Status::InvalidArgument("trailing bytes in subplan");
  }
  return sp;
}

int SubplanWireBytes(const QueryPlan& plan, const net::Topology& topology,
                     int node) {
  return static_cast<int>(EncodeSubplan(SubplanFor(plan, topology, node)).size());
}

}  // namespace core
}  // namespace prospector
