#include "src/core/plan_wire.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace prospector {
namespace core {
namespace {

constexpr uint8_t kFlagMask = 0x07;  // bits 0-2; the rest are reserved

bool FitsByte(int v) { return v >= 0 && v <= 255; }

Status CheckField(const char* what, int v) {
  if (v < 0 || v > kSubplanMaxFieldValue) {
    return Status::InvalidArgument(std::string("subplan ") + what +
                                   " out of range: " + std::to_string(v));
  }
  return Status::OK();
}

void PutVarint(std::vector<uint8_t>* out, uint32_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

/// Canonical LEB128 reader: accepts exactly the encodings PutVarint
/// produces. Rejects truncation, overlong forms (a non-final zero
/// continuation, e.g. 0x85 0x00 for 5), and 5-byte encodings whose high
/// bits fall outside uint32 — every varint has one and only one spelling,
/// so golden byte vectors pin values exactly.
bool GetVarint(const std::vector<uint8_t>& in, size_t* pos, uint32_t* out) {
  uint32_t v = 0;
  int shift = 0;
  while (*pos < in.size() && shift <= 28) {
    const uint8_t b = in[(*pos)++];
    if (shift == 28 && (b & 0xf0)) return false;  // beyond 32 bits
    if (shift > 0 && b == 0x00) return false;     // overlong encoding
    v |= static_cast<uint32_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

/// Reads a varint-coded field into a non-negative int.
Status GetVarintField(const std::vector<uint8_t>& in, size_t* pos,
                      const char* what, int* out) {
  uint32_t v = 0;
  if (!GetVarint(in, pos, &v)) {
    return Status::InvalidArgument(std::string("bad varint in subplan ") +
                                   what);
  }
  if (v > static_cast<uint32_t>(kSubplanMaxFieldValue)) {
    return Status::InvalidArgument(std::string("subplan ") + what +
                                   " out of range: " + std::to_string(v));
  }
  *out = static_cast<int>(v);
  return Status::OK();
}

/// True when the subplan is representable under the byte-sized v0/v1
/// layouts (every value and count fits in a uint8). The encoder uses this
/// to pick the minimal version; the decoder uses it to reject a v2 blob
/// that should have been v0/v1.
bool FitsByteLayout(const Subplan& sp) {
  if (!FitsByte(sp.k) || !FitsByte(sp.outgoing_bandwidth)) return false;
  if (sp.child_bandwidth.size() > 255 || sp.query_entries.size() > 255) {
    return false;
  }
  for (const auto& [child, bw] : sp.child_bandwidth) {
    (void)child;  // ids are varints in every version
    if (!FitsByte(bw)) return false;
  }
  for (const SubplanQueryEntry& e : sp.query_entries) {
    if (!FitsByte(e.k) || !FitsByte(e.bandwidth)) return false;
  }
  return true;
}

Status ValidateForEncode(const Subplan& sp) {
  PROSPECTOR_RETURN_IF_ERROR(CheckField("k", sp.k));
  PROSPECTOR_RETURN_IF_ERROR(
      CheckField("outgoing bandwidth", sp.outgoing_bandwidth));
  for (const auto& [child, bw] : sp.child_bandwidth) {
    PROSPECTOR_RETURN_IF_ERROR(CheckField("child id", child));
    PROSPECTOR_RETURN_IF_ERROR(CheckField("child bandwidth", bw));
  }
  for (const SubplanQueryEntry& e : sp.query_entries) {
    PROSPECTOR_RETURN_IF_ERROR(CheckField("query id", e.query_id));
    PROSPECTOR_RETURN_IF_ERROR(CheckField("query k", e.k));
    PROSPECTOR_RETURN_IF_ERROR(CheckField("query bandwidth", e.bandwidth));
  }
  return Status::OK();
}

uint8_t FlagsOf(const Subplan& sp) {
  uint8_t flags = 0;
  if (sp.proof_carrying) flags |= 1;
  if (sp.node_selection) flags |= 2;
  if (sp.chosen) flags |= 4;
  return flags;
}

}  // namespace

Subplan SubplanFor(const QueryPlan& plan, const net::Topology& topology,
                   int node) {
  Subplan sp;
  sp.proof_carrying = plan.proof_carrying;
  sp.node_selection = plan.kind == PlanKind::kNodeSelection;
  sp.chosen = sp.node_selection && node < static_cast<int>(plan.chosen.size())
                  ? plan.chosen[node] != 0
                  : false;
  sp.k = plan.k;
  sp.outgoing_bandwidth = node == topology.root() ? 0 : plan.bandwidth[node];
  for (int c : topology.children(node)) {
    if (plan.UsesEdge(c)) {
      sp.child_bandwidth.emplace_back(c, plan.bandwidth[c]);
    }
  }
  return sp;
}

Result<std::vector<uint8_t>> EncodeSubplan(const Subplan& sp) {
  PROSPECTOR_RETURN_IF_ERROR(ValidateForEncode(sp));
  std::vector<uint8_t> out;
  if (FitsByteLayout(sp)) {
    // Minimal version: the historical byte-sized layouts. Subplans without
    // per-query entries stay byte-exact with the untagged version-0
    // encoding (and the pinned install-cost model); superplan subplans
    // take the version-1 tag.
    if (!sp.query_entries.empty()) {
      out.push_back(static_cast<uint8_t>(kSubplanVersionTag | 1));
    }
    out.push_back(FlagsOf(sp));
    out.push_back(static_cast<uint8_t>(sp.k));
    out.push_back(static_cast<uint8_t>(sp.outgoing_bandwidth));
    out.push_back(static_cast<uint8_t>(sp.child_bandwidth.size()));
    for (const auto& [child, bw] : sp.child_bandwidth) {
      PutVarint(&out, static_cast<uint32_t>(child));
      out.push_back(static_cast<uint8_t>(bw));
    }
    if (!sp.query_entries.empty()) {
      out.push_back(static_cast<uint8_t>(sp.query_entries.size()));
      for (const SubplanQueryEntry& e : sp.query_entries) {
        PutVarint(&out, static_cast<uint32_t>(e.query_id));
        out.push_back(static_cast<uint8_t>(e.k));
        out.push_back(static_cast<uint8_t>(e.bandwidth));
      }
    }
    return out;
  }
  // Version 2: some count or value exceeds a byte; everything widens to a
  // varint instead of being clamped.
  out.push_back(static_cast<uint8_t>(kSubplanVersionTag | 2));
  out.push_back(FlagsOf(sp));
  PutVarint(&out, static_cast<uint32_t>(sp.k));
  PutVarint(&out, static_cast<uint32_t>(sp.outgoing_bandwidth));
  PutVarint(&out, static_cast<uint32_t>(sp.child_bandwidth.size()));
  for (const auto& [child, bw] : sp.child_bandwidth) {
    PutVarint(&out, static_cast<uint32_t>(child));
    PutVarint(&out, static_cast<uint32_t>(bw));
  }
  PutVarint(&out, static_cast<uint32_t>(sp.query_entries.size()));
  for (const SubplanQueryEntry& e : sp.query_entries) {
    PutVarint(&out, static_cast<uint32_t>(e.query_id));
    PutVarint(&out, static_cast<uint32_t>(e.k));
    PutVarint(&out, static_cast<uint32_t>(e.bandwidth));
  }
  return out;
}

int SubplanWireVersion(const std::vector<uint8_t>& bytes) {
  if (bytes.empty()) return -1;
  // Version-0 flag bytes only use bits 0-2, so 0xC0-prefixed bytes are
  // unambiguously version tags.
  if ((bytes[0] & kSubplanVersionTag) == kSubplanVersionTag) {
    return bytes[0] & static_cast<uint8_t>(~kSubplanVersionTag);
  }
  return 0;
}

Result<Subplan> DecodeSubplan(const std::vector<uint8_t>& bytes) {
  const int version = SubplanWireVersion(bytes);
  if (version < 0) return Status::InvalidArgument("subplan too short");
  if (version > kSubplanWireVersion) {
    return Status::InvalidArgument("unsupported subplan wire version");
  }
  size_t pos = version > 0 ? 1 : 0;
  Subplan sp;
  if (version <= 1) {
    if (bytes.size() < pos + 4) {
      return Status::InvalidArgument("subplan too short");
    }
    if (bytes[pos] & ~kFlagMask) {
      return Status::InvalidArgument("unknown subplan flag bits");
    }
    sp.proof_carrying = bytes[pos] & 1;
    sp.node_selection = bytes[pos] & 2;
    sp.chosen = bytes[pos] & 4;
    sp.k = bytes[pos + 1];
    sp.outgoing_bandwidth = bytes[pos + 2];
    const int m = bytes[pos + 3];
    pos += 4;
    for (int i = 0; i < m; ++i) {
      int child = 0;
      PROSPECTOR_RETURN_IF_ERROR(
          GetVarintField(bytes, &pos, "child id", &child));
      if (pos >= bytes.size()) {
        return Status::InvalidArgument("truncated subplan bandwidth");
      }
      sp.child_bandwidth.emplace_back(child, bytes[pos++]);
    }
    if (version == 1) {
      if (pos >= bytes.size()) {
        return Status::InvalidArgument("truncated subplan query count");
      }
      const int nq = bytes[pos++];
      if (nq == 0) {
        // The encoder only tags version 1 when entries exist; an
        // entry-less tagged blob is version 0 spelled non-minimally.
        return Status::InvalidArgument(
            "non-canonical subplan: version 1 without query entries");
      }
      for (int i = 0; i < nq; ++i) {
        int qid = 0;
        PROSPECTOR_RETURN_IF_ERROR(
            GetVarintField(bytes, &pos, "query id", &qid));
        if (pos + 2 > bytes.size()) {
          return Status::InvalidArgument("truncated subplan query entry");
        }
        SubplanQueryEntry e;
        e.query_id = qid;
        e.k = bytes[pos++];
        e.bandwidth = bytes[pos++];
        sp.query_entries.push_back(e);
      }
    }
  } else {
    if (bytes.size() < pos + 1) {
      return Status::InvalidArgument("subplan too short");
    }
    if (bytes[pos] & ~kFlagMask) {
      return Status::InvalidArgument("unknown subplan flag bits");
    }
    sp.proof_carrying = bytes[pos] & 1;
    sp.node_selection = bytes[pos] & 2;
    sp.chosen = bytes[pos] & 4;
    ++pos;
    PROSPECTOR_RETURN_IF_ERROR(GetVarintField(bytes, &pos, "k", &sp.k));
    PROSPECTOR_RETURN_IF_ERROR(
        GetVarintField(bytes, &pos, "outgoing bandwidth",
                       &sp.outgoing_bandwidth));
    int m = 0;
    PROSPECTOR_RETURN_IF_ERROR(
        GetVarintField(bytes, &pos, "child count", &m));
    for (int i = 0; i < m; ++i) {
      int child = 0, bw = 0;
      PROSPECTOR_RETURN_IF_ERROR(
          GetVarintField(bytes, &pos, "child id", &child));
      PROSPECTOR_RETURN_IF_ERROR(
          GetVarintField(bytes, &pos, "child bandwidth", &bw));
      sp.child_bandwidth.emplace_back(child, bw);
    }
    int nq = 0;
    PROSPECTOR_RETURN_IF_ERROR(
        GetVarintField(bytes, &pos, "query count", &nq));
    for (int i = 0; i < nq; ++i) {
      SubplanQueryEntry e;
      PROSPECTOR_RETURN_IF_ERROR(
          GetVarintField(bytes, &pos, "query id", &e.query_id));
      PROSPECTOR_RETURN_IF_ERROR(GetVarintField(bytes, &pos, "query k", &e.k));
      PROSPECTOR_RETURN_IF_ERROR(
          GetVarintField(bytes, &pos, "query bandwidth", &e.bandwidth));
      sp.query_entries.push_back(e);
    }
    if (FitsByteLayout(sp)) {
      // Everything fits in bytes, so the canonical spelling is v0/v1.
      return Status::InvalidArgument(
          "non-canonical subplan: version 2 fits byte layout");
    }
  }
  if (pos != bytes.size()) {
    return Status::InvalidArgument("trailing bytes in subplan");
  }
  return sp;
}

int SubplanWireBytes(const QueryPlan& plan, const net::Topology& topology,
                     int node) {
  auto bytes = EncodeSubplan(SubplanFor(plan, topology, node));
  if (!bytes.ok()) {
    std::fprintf(stderr, "SubplanWireBytes: unencodable plan at node %d: %s\n",
                 node, bytes.status().ToString().c_str());
    std::abort();
  }
  return static_cast<int>(bytes->size());
}

Status VerifyPlanWireFidelity(const QueryPlan& plan,
                              const net::Topology& topology) {
  for (int u : topology.PreOrder()) {
    if (u != topology.root() && !plan.UsesEdge(u)) continue;
    const Subplan sp = SubplanFor(plan, topology, u);
    auto bytes = EncodeSubplan(sp);
    if (!bytes.ok()) {
      return Status::Internal("node " + std::to_string(u) +
                              ": subplan does not encode: " +
                              bytes.status().ToString());
    }
    auto decoded = DecodeSubplan(*bytes);
    if (!decoded.ok()) {
      return Status::Internal("node " + std::to_string(u) +
                              ": shipped subplan does not decode: " +
                              decoded.status().ToString());
    }
    if (!(*decoded == sp)) {
      return Status::Internal("node " + std::to_string(u) +
                              ": decoded subplan differs from planned");
    }
    if (decoded->k != plan.k) {
      return Status::Internal(
          "node " + std::to_string(u) + ": decoded k " +
          std::to_string(decoded->k) + " != planned k " +
          std::to_string(plan.k));
    }
    const int planned_out = u == topology.root() ? 0 : plan.bandwidth[u];
    if (decoded->outgoing_bandwidth != planned_out) {
      return Status::Internal(
          "node " + std::to_string(u) + ": decoded outgoing bandwidth " +
          std::to_string(decoded->outgoing_bandwidth) + " != planned " +
          std::to_string(planned_out));
    }
    for (const auto& [child, bw] : decoded->child_bandwidth) {
      if (child < 0 || child >= topology.num_nodes() ||
          bw != plan.bandwidth[child]) {
        return Status::Internal(
            "node " + std::to_string(u) + ": decoded child " +
            std::to_string(child) + " bandwidth " + std::to_string(bw) +
            " differs from plan");
      }
    }
  }
  return Status::OK();
}

}  // namespace core
}  // namespace prospector
