#include "src/core/plan_wire.h"

#include <algorithm>

namespace prospector {
namespace core {
namespace {

uint8_t Cap255(int v) {
  return static_cast<uint8_t>(std::clamp(v, 0, 255));
}

void PutVarint(std::vector<uint8_t>* out, uint32_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

bool GetVarint(const std::vector<uint8_t>& in, size_t* pos, uint32_t* out) {
  uint32_t v = 0;
  int shift = 0;
  while (*pos < in.size() && shift <= 28) {
    const uint8_t b = in[(*pos)++];
    v |= static_cast<uint32_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace

Subplan SubplanFor(const QueryPlan& plan, const net::Topology& topology,
                   int node) {
  Subplan sp;
  sp.proof_carrying = plan.proof_carrying;
  sp.node_selection = plan.kind == PlanKind::kNodeSelection;
  sp.chosen = sp.node_selection && node < static_cast<int>(plan.chosen.size())
                  ? plan.chosen[node] != 0
                  : false;
  sp.k = Cap255(plan.k);
  sp.outgoing_bandwidth =
      node == topology.root() ? 0 : Cap255(plan.bandwidth[node]);
  for (int c : topology.children(node)) {
    if (plan.UsesEdge(c)) {
      sp.child_bandwidth.emplace_back(c, Cap255(plan.bandwidth[c]));
    }
  }
  return sp;
}

std::vector<uint8_t> EncodeSubplan(const Subplan& sp) {
  std::vector<uint8_t> out;
  uint8_t flags = 0;
  if (sp.proof_carrying) flags |= 1;
  if (sp.node_selection) flags |= 2;
  if (sp.chosen) flags |= 4;
  out.push_back(flags);
  out.push_back(sp.k);
  out.push_back(sp.outgoing_bandwidth);
  out.push_back(Cap255(static_cast<int>(sp.child_bandwidth.size())));
  for (const auto& [child, bw] : sp.child_bandwidth) {
    PutVarint(&out, static_cast<uint32_t>(child));
    out.push_back(bw);
  }
  return out;
}

Result<Subplan> DecodeSubplan(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 4) {
    return Status::InvalidArgument("subplan too short");
  }
  Subplan sp;
  sp.proof_carrying = bytes[0] & 1;
  sp.node_selection = bytes[0] & 2;
  sp.chosen = bytes[0] & 4;
  sp.k = bytes[1];
  sp.outgoing_bandwidth = bytes[2];
  const int m = bytes[3];
  size_t pos = 4;
  for (int i = 0; i < m; ++i) {
    uint32_t child = 0;
    if (!GetVarint(bytes, &pos, &child) || pos >= bytes.size() + 0) {
      return Status::InvalidArgument("truncated subplan child list");
    }
    if (pos >= bytes.size()) {
      return Status::InvalidArgument("truncated subplan bandwidth");
    }
    sp.child_bandwidth.emplace_back(static_cast<int>(child), bytes[pos++]);
  }
  if (pos != bytes.size()) {
    return Status::InvalidArgument("trailing bytes in subplan");
  }
  return sp;
}

int SubplanWireBytes(const QueryPlan& plan, const net::Topology& topology,
                     int node) {
  return static_cast<int>(EncodeSubplan(SubplanFor(plan, topology, node)).size());
}

}  // namespace core
}  // namespace prospector
