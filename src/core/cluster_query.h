#ifndef PROSPECTOR_CORE_CLUSTER_QUERY_H_
#define PROSPECTOR_CORE_CLUSTER_QUERY_H_

#include <vector>

#include "src/core/reading.h"
#include "src/net/simulator.h"
#include "src/net/topology.h"
#include "src/sampling/sample_set.h"

namespace prospector {
namespace core {

/// Section 1's tailored query: "the researchers might want to group nearby
/// feeders into clusters for purposes of observation, and obtain the top k
/// clusters ordered by average bird count. Nevertheless, the basic form of
/// the query remains top-k."
///
/// This module provides (a) geometric clustering helpers, (b) an exact
/// TAG-style in-network aggregation executor (each node merges per-cluster
/// (sum, count) partials from its children — the in-network aggregation
/// substrate of Madden et al. the paper builds on), and (c) the
/// contributor function that lets every PROSPECTOR planner optimize
/// approximate cluster-top-k plans through the generalized sample matrix.
struct Clustering {
  /// Cluster id per node; -1 marks unclustered nodes (e.g. the root),
  /// which never contribute to the answer.
  std::vector<int> cluster_of_node;
  int num_clusters = 0;

  int cluster(int node) const { return cluster_of_node[node]; }
};

/// Clusters nodes by a cells_x x cells_y grid over their physical
/// positions (requires a geometric topology). Empty cells are skipped, so
/// cluster ids are dense. The root stays unclustered.
Clustering ClusterByGrid(const net::Topology& topology, int cells_x,
                         int cells_y);

/// Per-cluster averages of one epoch; NaN for clusters with no readings.
std::vector<double> ClusterAverages(const Clustering& clustering,
                                    const std::vector<double>& values);

/// The k clusters with the highest average (ties toward lower id).
std::vector<int> TopClusters(const std::vector<double>& averages, int k);

/// Contributor for sampling-based planning: every member of a top-k
/// cluster contributes (Q[j][i] = 1), so planners learn which regions'
/// readings the answer needs.
sampling::ContributorFn ClusterTopKContributor(Clustering clustering, int k);

/// Result of the exact in-network aggregation.
struct ClusterAggregateResult {
  std::vector<double> cluster_avg;
  std::vector<int> top_clusters;
  double energy_mj = 0.0;
  int messages = 0;
};

/// Exact cluster top-k via in-network aggregation: one bottom-up pass in
/// which every node forwards one (sum, count) partial per cluster present
/// in its subtree. Each partial occupies one value slot of the energy
/// model. Minimum message count, and message sizes bounded by the number
/// of clusters rather than the subtree size — the classic aggregation
/// saving.
ClusterAggregateResult ExecuteClusterAggregate(const Clustering& clustering,
                                               const std::vector<double>& truth,
                                               int k,
                                               net::NetworkSimulator* sim);

/// Estimates the top-k clusters from whatever readings an approximate plan
/// delivered (averaging the arrived members per cluster).
std::vector<int> EstimateTopClusters(const Clustering& clustering,
                                     const std::vector<Reading>& arrived,
                                     int k);

/// |estimated ∩ true| / |true| for cluster id lists.
double ClusterRecall(const std::vector<int>& estimated,
                     const std::vector<int>& truth);

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_CLUSTER_QUERY_H_
