#ifndef PROSPECTOR_CORE_SESSION_H_
#define PROSPECTOR_CORE_SESSION_H_

#include <memory>
#include <vector>

#include "src/core/exact.h"
#include "src/core/greedy_planner.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/lp_no_filter_planner.h"
#include "src/core/plan_manager.h"
#include "src/core/workspace.h"
#include "src/net/fault_injector.h"
#include "src/net/rebuild.h"
#include "src/net/simulator.h"
#include "src/sampling/collector.h"
#include "src/sampling/sample_set.h"

namespace prospector {
namespace core {

/// Configuration of a standing top-k query.
struct SessionOptions {
  int k = 10;
  double energy_budget_mj = 10.0;
  /// Sliding sample window (Section 3's "window of recent samples").
  size_t sample_window = 40;
  /// The first epochs always run full sweeps to seed the window.
  int bootstrap_sweeps = 8;
  /// Which PROSPECTOR plans the queries.
  enum class PlannerChoice { kGreedy, kLpNoFilter, kLpFilter };
  PlannerChoice planner = PlannerChoice::kLpFilter;
  LpPlannerOptions lp;
  PlanManagerOptions manager;
  /// Every `audit_every` query epochs, run a proof-carrying exact query to
  /// measure true accuracy and drive the re-sampling policy (Section 4.4);
  /// 0 disables audits.
  int audit_every = 0;
  /// Phase-1 budget of an audit, as a multiple of the proof floor.
  double audit_budget_factor = 1.15;

  // --- Incremental planning (DESIGN.md, "Incremental planning") ---
  /// The session owns a PlanningWorkspace and threads it through every
  /// replan, so steady-state epochs reuse cached LP skeletons, warm-start
  /// the simplex, and skip replans whose inputs did not move. Plans are
  /// bit-identical either way; disable to force the from-scratch path.
  bool use_workspace = true;
  WorkspaceOptions workspace;

  // --- Robustness (DESIGN.md, "Failure semantics") ---
  /// Scripted fault timeline, driven by the session clock (event epoch ==
  /// Tick count). Node ids refer to the construction-time topology; the
  /// schedule follows survivors through rebuilds. Empty = no injection.
  net::FaultSchedule faults;
  /// Transport tier 2: bounded retries with backoff, then genuine drops.
  net::LossyTransport lossy;
  /// Watchdog: a non-root subtree whose expected traffic has been missing
  /// for this many consecutive observed epochs is declared permanently
  /// dead; the session rebuilds the tree without it, remaps the sample
  /// window, and replans (Section 4.4's "the tree adjusts to exclude the
  /// node"). 0 disables the watchdog.
  int dead_after_epochs = 0;
  /// Radio range for the rebuild's minimum-hop re-tree. Required when the
  /// watchdog is enabled; the topology must be geometric (positions).
  double rebuild_radio_range = 0.0;
};

/// One-stop standing top-k query over a deployed network — the facade a
/// downstream user adopts. The session owns the sliding sample window, the
/// planner and re-planning policy, the exploration schedule, the optional
/// proof-backed accuracy audits, and the energy ledger. Call Tick() once
/// per epoch with the network's current readings; the session decides
/// whether that epoch explores (full sweep), audits, or answers the query
/// with the installed plan.
class TopKQuerySession {
 public:
  TopKQuerySession(const net::Topology* topology, net::EnergyModel energy,
                   net::FailureModel failures, SessionOptions options,
                   uint64_t seed = 1);

  /// What one epoch did.
  struct TickResult {
    enum class Kind { kBootstrap, kExplore, kAudit, kQuery };
    Kind kind = Kind::kQuery;
    /// The query answer (top-k readings at the root); exact for audit
    /// epochs, empty for pure exploration epochs. Node ids are always
    /// construction-time (original) ids, even after rebuilds.
    std::vector<Reading> answer;
    double energy_mj = 0.0;
    bool replanned = false;
    /// Audit epochs: how many answers phase 1 proved (k = full marks).
    int proven = -1;
    /// Query/audit epochs: fraction of the true top-k in `answer`,
    /// measured against the caller's truth vector. -1 for epochs that
    /// return no answer (bootstrap/explore).
    double recall = -1.0;
    /// Wall-clock cost of any replan this epoch (0 when none ran).
    double replan_latency_ms = 0.0;
    /// Loss accounting for this epoch (fault injection / lossy transport).
    bool degraded = false;
    int values_lost = 0;
    /// Watchdog action: original ids excluded this epoch (nodes declared
    /// dead plus survivors orphaned by their loss). Usually empty.
    std::vector<int> removed_nodes;
    bool rebuilt = false;
  };

  /// `truth` is always indexed by construction-time node ids (size = the
  /// original network), regardless of rebuilds; readings of excluded
  /// nodes are simply ignored.
  Result<TickResult> Tick(const std::vector<double>& truth);

  int epoch() const { return epoch_; }
  bool has_plan() const { return manager_.has_plan(); }
  const QueryPlan& plan() const { return manager_.plan(); }
  const sampling::SampleSet& samples() const { return samples_; }
  const PlanManager& manager() const { return manager_; }
  /// The session's incremental-planning caches (hit/miss counters etc.).
  const PlanningWorkspace& workspace() const { return workspace_; }

  /// The tree currently in use (the rebuilt one after self-healing).
  const net::Topology& topology() const { return *topology_; }
  /// How many self-healing rebuilds have happened.
  int rebuilds() const { return rebuilds_; }
  /// Current id -> construction-time id.
  const std::vector<int>& original_ids() const { return orig_of_; }
  /// The active injector, or nullptr when no faults were scripted.
  const net::FaultInjector* fault_injector() const {
    return injecting_ ? &injector_ : nullptr;
  }

  /// Cumulative energy by activity, mJ.
  double query_energy_mj() const { return query_energy_; }
  double sampling_energy_mj() const { return sampling_energy_; }
  double audit_energy_mj() const { return audit_energy_; }
  double install_energy_mj() const { return install_energy_; }
  double total_energy_mj() const {
    return query_energy_ + sampling_energy_ + audit_energy_ + install_energy_;
  }

 private:
  Result<bool> Replan();
  /// Feeds one epoch's per-edge link evidence into the silence counters.
  void ObserveEdges(const std::vector<char>& expected,
                    const std::vector<char>& delivered);
  /// Answers leave the session in construction-time ids.
  void TranslateAnswer(std::vector<Reading>* answer) const;
  /// Declares long-silent subtrees dead, rebuilds, remaps, replans.
  /// Returns whether a rebuild happened.
  Result<bool> MaybeHeal(TickResult* result);
  /// Records per-epoch observability metrics for a finished tick.
  void FinishTick(const TickResult* result) const;

  const net::Topology* topology_;
  SessionOptions options_;
  PlanningWorkspace workspace_;
  PlannerContext ctx_;
  net::NetworkSimulator sim_;
  sampling::SampleSet samples_;
  sampling::SampleCollector collector_;
  std::unique_ptr<Planner> planner_;
  PlanManager manager_;
  Rng rng_;
  int epoch_ = 0;
  int queries_since_audit_ = 0;
  double last_replan_latency_ms_ = 0.0;
  double query_energy_ = 0.0;
  double sampling_energy_ = 0.0;
  double audit_energy_ = 0.0;
  double install_energy_ = 0.0;

  // Robustness state. After a self-healing rebuild `owned_topology_`
  // replaces the caller's topology and `topology_`/`ctx_`/`sim_` all point
  // at it; `orig_of_[i]` maps current node i back to its construction-time
  // id. `silent_[i]` counts consecutive observed epochs in which node i's
  // edge was expected to carry traffic but delivered nothing.
  uint64_t seed_;
  int original_num_nodes_;
  net::FaultInjector injector_;
  bool injecting_ = false;
  std::unique_ptr<net::Topology> owned_topology_;
  std::vector<int> orig_of_;
  std::vector<int> silent_;
  int rebuilds_ = 0;
};

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_SESSION_H_
