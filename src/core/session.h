#ifndef PROSPECTOR_CORE_SESSION_H_
#define PROSPECTOR_CORE_SESSION_H_

#include <vector>

#include "src/core/query_engine.h"

namespace prospector {
namespace core {

/// Configuration of a standing top-k query. Kept flat for source
/// compatibility; internally this splits into the engine-wide knobs
/// (QueryEngineOptions) and the per-query spec (QuerySpec).
struct SessionOptions {
  int k = 10;
  double energy_budget_mj = 10.0;
  /// Sliding sample window (Section 3's "window of recent samples").
  size_t sample_window = 40;
  /// The first epochs always run full sweeps to seed the window.
  int bootstrap_sweeps = 8;
  /// Which PROSPECTOR plans the queries.
  using PlannerChoice = ::prospector::core::PlannerChoice;
  PlannerChoice planner = PlannerChoice::kLpFilter;
  LpPlannerOptions lp;
  PlanManagerOptions manager;
  /// Every `audit_every` query epochs, run a proof-carrying exact query to
  /// measure true accuracy and drive the re-sampling policy (Section 4.4);
  /// 0 disables audits.
  int audit_every = 0;
  /// Phase-1 budget of an audit, as a multiple of the proof floor.
  double audit_budget_factor = 1.15;

  // --- Incremental planning (DESIGN.md, "Incremental planning") ---
  /// The session owns a PlanningWorkspace and threads it through every
  /// replan, so steady-state epochs reuse cached LP skeletons, warm-start
  /// the simplex, and skip replans whose inputs did not move. Plans are
  /// bit-identical either way; disable to force the from-scratch path.
  bool use_workspace = true;
  WorkspaceOptions workspace;

  // --- Robustness (DESIGN.md, "Failure semantics") ---
  /// Scripted fault timeline, driven by the session clock (event epoch ==
  /// Tick count). Node ids refer to the construction-time topology; the
  /// schedule follows survivors through rebuilds. Empty = no injection.
  net::FaultSchedule faults;
  /// Transport tier 2: bounded retries with backoff, then genuine drops.
  net::LossyTransport lossy;
  /// Watchdog: a non-root subtree whose expected traffic has been missing
  /// for this many consecutive observed epochs is declared permanently
  /// dead; the session rebuilds the tree without it, remaps the sample
  /// window, and replans (Section 4.4's "the tree adjusts to exclude the
  /// node"). 0 disables the watchdog.
  int dead_after_epochs = 0;
  /// Radio range for the rebuild's minimum-hop re-tree. Required when the
  /// watchdog is enabled; the topology must be geometric (positions).
  double rebuild_radio_range = 0.0;
};

/// One-stop standing top-k query over a deployed network — the facade a
/// downstream user adopts. Since the multi-query refactor this is a thin
/// single-query adapter over core::QueryEngine (see DESIGN.md,
/// "Multi-query engine"): the engine owns the sample window, planner,
/// exploration schedule, audits, watchdog, and energy ledger; the session
/// registers exactly one query at construction and translates the
/// engine's per-epoch result back into the historical TickResult shape.
/// Behavior is bit-identical to the pre-refactor session.
class TopKQuerySession {
 public:
  TopKQuerySession(const net::Topology* topology, net::EnergyModel energy,
                   net::FailureModel failures, SessionOptions options,
                   uint64_t seed = 1);

  /// What one epoch did.
  struct TickResult {
    enum class Kind { kBootstrap, kExplore, kAudit, kQuery };
    Kind kind = Kind::kQuery;
    /// The query answer (top-k readings at the root); exact for audit
    /// epochs, empty for pure exploration epochs. Node ids are always
    /// construction-time (original) ids, even after rebuilds.
    std::vector<Reading> answer;
    double energy_mj = 0.0;
    bool replanned = false;
    /// Audit epochs: how many answers phase 1 proved (k = full marks).
    int proven = -1;
    /// Query/audit epochs: fraction of the true top-k in `answer`,
    /// measured against the caller's truth vector. -1 for epochs that
    /// return no answer (bootstrap/explore).
    double recall = -1.0;
    /// Wall-clock cost of any replan this epoch (0 when none ran).
    double replan_latency_ms = 0.0;
    /// Loss accounting for this epoch (fault injection / lossy transport).
    bool degraded = false;
    int values_lost = 0;
    /// Watchdog action: original ids excluded this epoch (nodes declared
    /// dead plus survivors orphaned by their loss). Usually empty.
    std::vector<int> removed_nodes;
    bool rebuilt = false;
  };

  /// `truth` is always indexed by construction-time node ids (size = the
  /// original network), regardless of rebuilds; readings of excluded
  /// nodes are simply ignored.
  Result<TickResult> Tick(const std::vector<double>& truth);

  int epoch() const { return engine_.epoch(); }
  bool has_plan() const { return engine_.has_plan(qid_); }
  const QueryPlan& plan() const { return engine_.plan(qid_); }
  const sampling::SampleSet& samples() const { return engine_.samples(qid_); }
  const PlanManager& manager() const { return engine_.manager(qid_); }
  /// The session's incremental-planning caches (hit/miss counters etc.).
  const PlanningWorkspace& workspace() const { return engine_.workspace(); }

  /// The tree currently in use (the rebuilt one after self-healing).
  const net::Topology& topology() const { return engine_.topology(); }
  /// How many self-healing rebuilds have happened.
  int rebuilds() const { return engine_.rebuilds(); }
  /// Current id -> construction-time id.
  const std::vector<int>& original_ids() const {
    return engine_.original_ids();
  }
  /// The active injector, or nullptr when no faults were scripted.
  const net::FaultInjector* fault_injector() const {
    return engine_.fault_injector();
  }

  /// Cumulative energy by activity, mJ.
  double query_energy_mj() const { return engine_.query_energy_mj(); }
  double sampling_energy_mj() const { return engine_.sampling_energy_mj(); }
  double audit_energy_mj() const { return engine_.audit_energy_mj(); }
  double install_energy_mj() const { return engine_.install_energy_mj(); }
  double total_energy_mj() const { return engine_.total_energy_mj(); }

  /// The engine underneath — the migration path for callers that want to
  /// co-register more queries on this session's radio.
  QueryEngine& engine() { return engine_; }
  const QueryEngine& engine() const { return engine_; }
  /// This session's query id inside engine().
  int query_id() const { return qid_; }

 private:
  QueryEngine engine_;
  int qid_;
};

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_SESSION_H_
