#ifndef PROSPECTOR_CORE_SESSION_H_
#define PROSPECTOR_CORE_SESSION_H_

#include <memory>
#include <vector>

#include "src/core/exact.h"
#include "src/core/greedy_planner.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/lp_no_filter_planner.h"
#include "src/core/plan_manager.h"
#include "src/net/simulator.h"
#include "src/sampling/collector.h"
#include "src/sampling/sample_set.h"

namespace prospector {
namespace core {

/// Configuration of a standing top-k query.
struct SessionOptions {
  int k = 10;
  double energy_budget_mj = 10.0;
  /// Sliding sample window (Section 3's "window of recent samples").
  size_t sample_window = 40;
  /// The first epochs always run full sweeps to seed the window.
  int bootstrap_sweeps = 8;
  /// Which PROSPECTOR plans the queries.
  enum class PlannerChoice { kGreedy, kLpNoFilter, kLpFilter };
  PlannerChoice planner = PlannerChoice::kLpFilter;
  LpPlannerOptions lp;
  PlanManagerOptions manager;
  /// Every `audit_every` query epochs, run a proof-carrying exact query to
  /// measure true accuracy and drive the re-sampling policy (Section 4.4);
  /// 0 disables audits.
  int audit_every = 0;
  /// Phase-1 budget of an audit, as a multiple of the proof floor.
  double audit_budget_factor = 1.15;
};

/// One-stop standing top-k query over a deployed network — the facade a
/// downstream user adopts. The session owns the sliding sample window, the
/// planner and re-planning policy, the exploration schedule, the optional
/// proof-backed accuracy audits, and the energy ledger. Call Tick() once
/// per epoch with the network's current readings; the session decides
/// whether that epoch explores (full sweep), audits, or answers the query
/// with the installed plan.
class TopKQuerySession {
 public:
  TopKQuerySession(const net::Topology* topology, net::EnergyModel energy,
                   net::FailureModel failures, SessionOptions options,
                   uint64_t seed = 1);

  /// What one epoch did.
  struct TickResult {
    enum class Kind { kBootstrap, kExplore, kAudit, kQuery };
    Kind kind = Kind::kQuery;
    /// The query answer (top-k readings at the root); exact for audit
    /// epochs, empty for pure exploration epochs.
    std::vector<Reading> answer;
    double energy_mj = 0.0;
    bool replanned = false;
    /// Audit epochs: how many answers phase 1 proved (k = full marks).
    int proven = -1;
  };

  Result<TickResult> Tick(const std::vector<double>& truth);

  int epoch() const { return epoch_; }
  bool has_plan() const { return manager_.has_plan(); }
  const QueryPlan& plan() const { return manager_.plan(); }
  const sampling::SampleSet& samples() const { return samples_; }
  const PlanManager& manager() const { return manager_; }

  /// Cumulative energy by activity, mJ.
  double query_energy_mj() const { return query_energy_; }
  double sampling_energy_mj() const { return sampling_energy_; }
  double audit_energy_mj() const { return audit_energy_; }
  double install_energy_mj() const { return install_energy_; }
  double total_energy_mj() const {
    return query_energy_ + sampling_energy_ + audit_energy_ + install_energy_;
  }

 private:
  Result<bool> Replan();

  const net::Topology* topology_;
  SessionOptions options_;
  PlannerContext ctx_;
  net::NetworkSimulator sim_;
  sampling::SampleSet samples_;
  sampling::SampleCollector collector_;
  std::unique_ptr<Planner> planner_;
  PlanManager manager_;
  Rng rng_;
  int epoch_ = 0;
  int queries_since_audit_ = 0;
  double query_energy_ = 0.0;
  double sampling_energy_ = 0.0;
  double audit_energy_ = 0.0;
  double install_energy_ = 0.0;
};

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_SESSION_H_
