#ifndef PROSPECTOR_CORE_GENERALIZED_H_
#define PROSPECTOR_CORE_GENERALIZED_H_

#include <algorithm>
#include <vector>

#include "src/core/executor.h"
#include "src/core/planner.h"

namespace prospector {
namespace core {

/// Section 3 generalization: "this approach can be easily generalized to
/// queries that return subsets of all sensor values, e.g., selection and
/// quantile queries. In the general case, Q[j][i] = 1 if node i
/// contributes to the answer in the j-th sample."
///
/// Build the SampleSet with the matching contributor
/// (SampleSet::ForSelection / ForQuantile / any custom ContributorFn) and
/// plan with any PROSPECTOR planner; the only top-k-specific parameter is
/// the bandwidth cap k, which for subset queries becomes the largest
/// answer size seen across the samples (with headroom for drift).

/// Bandwidth cap for a subset query: the largest per-sample answer size,
/// plus `headroom` to tolerate distribution drift. At least 1.
inline int SubsetBandwidthCap(const sampling::SampleSet& samples,
                              int headroom = 1) {
  int cap = 1;
  for (int j = 0; j < samples.num_samples(); ++j) {
    cap = std::max(cap, static_cast<int>(samples.ones(j).size()));
  }
  return cap + headroom;
}

/// Plans a subset (selection/quantile/custom) query with `planner`.
inline Result<QueryPlan> PlanSubsetQuery(Planner* planner,
                                         const PlannerContext& ctx,
                                         const sampling::SampleSet& samples,
                                         double energy_budget_mj,
                                         int headroom = 1) {
  PlanRequest req;
  req.k = SubsetBandwidthCap(samples, headroom);
  req.energy_budget_mj = energy_budget_mj;
  return planner->Plan(ctx, samples, req);
}

/// Recall of a subset query: the fraction of true contributors whose
/// readings reached the root. `contributors` are the true answer node ids
/// for this epoch (from the same ContributorFn the samples used).
inline double SubsetRecall(const ExecutionResult& result,
                           const std::vector<int>& contributors,
                           int num_nodes) {
  if (contributors.empty()) return 1.0;
  std::vector<char> arrived(num_nodes, 0);
  for (const Reading& r : result.arrived) arrived[r.node] = 1;
  int hit = 0;
  for (int i : contributors) hit += arrived[i];
  return static_cast<double>(hit) / static_cast<double>(contributors.size());
}

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_GENERALIZED_H_
