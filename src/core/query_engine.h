#ifndef PROSPECTOR_CORE_QUERY_ENGINE_H_
#define PROSPECTOR_CORE_QUERY_ENGINE_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/core/exact.h"
#include "src/core/health.h"
#include "src/core/plan_manager.h"
#include "src/core/plan_merge.h"
#include "src/core/query_registry.h"
#include "src/core/workspace.h"
#include "src/net/fault_injector.h"
#include "src/net/rebuild.h"
#include "src/net/simulator.h"
#include "src/sampling/collector.h"
#include "src/sampling/sample_set.h"

namespace prospector {
namespace core {

/// Deployment-wide configuration shared by every registered query.
struct QueryEngineOptions {
  /// Sliding sample window (Section 3's "window of recent samples").
  size_t sample_window = 40;
  /// The first epochs always run full sweeps to seed the windows.
  int bootstrap_sweeps = 8;

  /// One PlanningWorkspace shared by every query's replans; each query
  /// leases its own LP slot (keyed by query id), so caches never collide.
  bool use_workspace = true;
  WorkspaceOptions workspace;

  /// Scripted fault timeline (engine epoch == event epoch). Empty = none.
  net::FaultSchedule faults;
  /// Transport tier 2: bounded retries with backoff, then genuine drops.
  net::LossyTransport lossy;
  /// Transport tier 3: rate-based duplication / corruption / delay
  /// (scripted per-edge events ride in `faults`). Validated at engine
  /// construction like the failure model.
  net::AdversarialTransport adversarial;
  /// Protocol defense against tier 3. kAuto fences exactly when any
  /// adversarial knob is active (config rates or scripted events), so a
  /// tier-1/2 engine stays bit-identical to the seed; kNaive is the
  /// deliberately-broken mode the chaos soak's tamper check uses.
  TransportFencing fencing = TransportFencing::kAuto;
  /// Shared watchdog: a non-root subtree silent for this many consecutive
  /// observed epochs is declared dead and the tree is rebuilt without it.
  /// 0 disables.
  int dead_after_epochs = 0;
  /// Radio range for the rebuild's minimum-hop re-tree.
  double rebuild_radio_range = 0.0;
  /// Fleet tag stamped onto health reports (and fleet rollups) when this
  /// engine is one deployment among many behind a service::FleetService;
  /// -1 for standalone engines.
  int deployment_id = -1;
};

/// Multi-query top-k engine over one deployed network (see DESIGN.md,
/// "Multi-query engine"). Layering:
///
///   QueryRegistry  — admit/retire concurrent standing queries
///   plan merge     — per-epoch superplan over the installed plans
///   epoch driver   — Tick(): one shared sweep/trigger/collection wave
///   demux          — per-query answers, recall, proofs, energy shares
///
/// One radio serves every query: exploration sweeps feed all sample
/// windows from a single charged sweep, query epochs execute one merged
/// superplan whose per-edge messages carry the union of what the
/// constituent plans want, and one watchdog/heal path maintains the tree
/// for everyone. With a single registered query the engine is
/// bit-identical to the historical single-query session: same RNG draws,
/// same messages, same answers, same ledger.
class QueryEngine {
 public:
  QueryEngine(const net::Topology* topology, net::EnergyModel energy,
              net::FailureModel failures, QueryEngineOptions options,
              uint64_t seed = 1);

  /// What one epoch did for one query (mirrors the single-query session's
  /// tick result).
  enum class QueryEpochKind { kBootstrap, kExplore, kAudit, kQuery };
  struct QueryTickResult {
    int query_id = -1;
    QueryEpochKind kind = QueryEpochKind::kQuery;
    /// Top-k answer in construction-time node ids; empty on
    /// bootstrap/explore epochs.
    std::vector<Reading> answer;
    /// This query's attributed share of the epoch's energy, mJ.
    double energy_mj = 0.0;
    bool replanned = false;
    int proven = -1;
    double recall = -1.0;
    double replan_latency_ms = 0.0;
    bool degraded = false;
    int values_lost = 0;
    /// This query's SLO health after the epoch was scored.
    HealthStatus health = HealthStatus::kUnknown;
  };

  /// What one epoch did overall.
  enum class EpochKind { kBootstrap, kExplore, kQuery, kIdle };
  struct TickResult {
    EpochKind kind = EpochKind::kIdle;
    /// One entry per registered query, in admission order.
    std::vector<QueryTickResult> per_query;
    /// Radio-level accounting: the audited epoch total and union loss.
    double energy_mj = 0.0;
    bool degraded = false;
    int values_lost = 0;
    /// Sharing wins of this epoch's superplan (query epochs only).
    int shared_messages = 0;
    long long shared_values = 0;
    /// Watchdog action this epoch.
    std::vector<int> removed_nodes;
    bool rebuilt = false;
  };

  // --- registry ---
  /// Admits a standing query; returns its stable id. The new query's
  /// sample window is hydrated from the sweeps the engine has already
  /// collected, so it can plan immediately.
  int AddQuery(const QuerySpec& spec);
  /// Admits a standing query under an externally supplied id (the fleet
  /// service allocates globally unique ids across deployments). Fails if
  /// the id was ever used on this engine — ids never alias, so a retired
  /// query's attribution pools and health windows cannot be revived.
  Result<int> AddQueryWithId(int id, const QuerySpec& spec);
  /// Retires a query. Its attributed energy stays in the engine totals.
  bool RemoveQuery(int id);
  int num_queries() const { return registry_.size(); }
  std::vector<int> query_ids() const { return registry_.ids(); }

  /// Runs one epoch for every registered query. `truth` is indexed by
  /// construction-time node ids regardless of rebuilds.
  Result<TickResult> Tick(const std::vector<double>& truth);

  // --- per-query accessors (abort on unknown id) ---
  bool has_plan(int id) const { return At(id).manager.has_plan(); }
  const QueryPlan& plan(int id) const { return At(id).manager.plan(); }
  const sampling::SampleSet& samples(int id) const { return At(id).samples; }
  const PlanManager& manager(int id) const { return At(id).manager; }
  const QuerySpec& spec(int id) const { return At(id).spec; }
  double query_energy_mj(int id) const { return At(id).query_energy_mj; }
  double sampling_energy_mj(int id) const { return At(id).sampling_energy_mj; }
  double audit_energy_mj(int id) const { return At(id).audit_energy_mj; }
  double install_energy_mj(int id) const { return At(id).install_energy_mj; }
  double total_energy_mj(int id) const { return At(id).total_energy_mj(); }

  /// SLO health of every registered query, in admission order.
  std::vector<QueryHealth> HealthReport() const;
  /// One query's health (aborts on unknown id).
  QueryHealth query_health(int id) const;

  // --- engine-level accessors ---
  int epoch() const { return epoch_; }
  const net::Topology& topology() const { return *topology_; }
  int rebuilds() const { return rebuilds_; }
  const std::vector<int>& original_ids() const { return orig_of_; }
  const net::FaultInjector* fault_injector() const {
    return injecting_ ? &injector_ : nullptr;
  }
  /// The transport guard defending this deployment's protocol layer, or
  /// nullptr when no adversarial knob is active (tier-1/2 engines run the
  /// seed protocol verbatim).
  const TransportGuard* transport_guard() const {
    return guarding_ ? &guard_ : nullptr;
  }
  /// Cumulative radio-level transmission accounting across every phase
  /// (sweeps, installs, audits, query epochs) and every rebuild — the
  /// ledger the chaos soak reconciles guard counters against.
  const net::TransmissionStats& radio_totals() const { return radio_totals_; }
  const PlanningWorkspace& workspace() const { return workspace_; }
  /// The merged superplan of the most recent query epoch (empty before
  /// the first one).
  const Superplan& superplan() const { return superplan_; }

  /// Cumulative radio energy by activity, mJ (audited epoch totals; the
  /// per-query attributed ledgers sum to these).
  double query_energy_mj() const { return query_energy_; }
  double sampling_energy_mj() const { return sampling_energy_; }
  double audit_energy_mj() const { return audit_energy_; }
  double install_energy_mj() const { return install_energy_; }
  double total_energy_mj() const {
    return query_energy_ + sampling_energy_ + audit_energy_ + install_energy_;
  }

 private:
  const QueryState& At(int id) const;
  void HydrateNewQuery(QueryState* q);
  PlannerContext CtxFor(int lease) const;
  TransportGuard* guard() { return guarding_ ? &guard_ : nullptr; }
  /// Drains the simulator's ledger into `radio_totals_` (every phase ends
  /// through here so the cumulative accounting survives ResetStats).
  net::TransmissionStats TakeRadioStats();
  Result<bool> ReplanQuery(QueryState* q);
  void ObserveEdges(const std::vector<char>& expected,
                    const std::vector<char>& delivered);
  void TranslateAnswer(std::vector<Reading>* answer) const;
  Result<bool> MaybeHeal(TickResult* result);
  /// Feeds every tracker this epoch's signals and stamps per-query health
  /// onto the result. Runs serially right before FinishTick.
  void UpdateHealth(TickResult* result);
  void FinishTick(const TickResult& result) const;

  const net::Topology* topology_;
  QueryEngineOptions options_;
  PlanningWorkspace workspace_;
  PlannerContext ctx_;
  net::NetworkSimulator sim_;
  sampling::SampleCollector collector_;
  QueryRegistry registry_;
  Rng rng_;
  int epoch_ = 0;
  Superplan superplan_;
  TransportGuard guard_;
  bool guarding_ = false;
  net::TransmissionStats radio_totals_;
  /// Guard rejections seen up to the previous tick, so health scoring can
  /// attribute a per-epoch rejection delta.
  long long guard_rejects_prev_ = 0;

  /// Recent collected sweeps (current-tree indexing, oldest first) —
  /// what hydrates the window of a query admitted mid-flight. Capped at
  /// `sample_window`.
  std::deque<std::vector<double>> history_;

  double query_energy_ = 0.0;
  double sampling_energy_ = 0.0;
  double audit_energy_ = 0.0;
  double install_energy_ = 0.0;

  // Robustness state (see the heal path): after a rebuild
  // `owned_topology_` replaces the caller's topology, `orig_of_[i]` maps
  // current node i to its construction-time id, and `silent_[i]` counts
  // consecutive observed epochs of unexpected silence.
  uint64_t seed_;
  int original_num_nodes_;
  net::FaultInjector injector_;
  bool injecting_ = false;
  std::unique_ptr<net::Topology> owned_topology_;
  std::vector<int> orig_of_;
  std::vector<int> silent_;
  int rebuilds_ = 0;
};

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_QUERY_ENGINE_H_
