#ifndef PROSPECTOR_CORE_LIFETIME_H_
#define PROSPECTOR_CORE_LIFETIME_H_

#include <vector>

#include "src/core/plan.h"
#include "src/net/simulator.h"
#include "src/net/topology.h"

namespace prospector {
namespace core {

/// Network-lifetime analysis — the quantity the energy budgeting
/// ultimately protects ("the lifetime of the network is tied to the rate
/// at which it consumes energy", Section 1).
///
/// Given per-node battery capacities and the per-node energy a plan
/// draws per query (from the simulator's ledger or the expected-cost
/// model), estimates how many queries the network survives under two
/// standard definitions:
///  * first death: the first node exhausts its battery;
///  * coverage loss: the root becomes disconnected from some surviving
///    sensing node (deaths cascade along the tree).
struct BatteryModel {
  /// Battery capacity per node, mJ. The root (base station) is usually
  /// mains-powered: give it a huge capacity.
  std::vector<double> capacity_mj;

  static BatteryModel Uniform(int num_nodes, double capacity_mj,
                              double root_capacity_mj = 1e12) {
    BatteryModel b;
    b.capacity_mj.assign(num_nodes, capacity_mj);
    if (num_nodes > 0) b.capacity_mj[0] = root_capacity_mj;
    return b;
  }
};

struct LifetimeEstimate {
  /// Queries until the first battery dies (the node id in first_casualty).
  double queries_until_first_death = 0.0;
  int first_casualty = -1;
  /// Queries until a node with positive remaining demand is cut off from
  /// the root, assuming dead relays silence their whole subtree.
  double queries_until_partition = 0.0;
  /// Per-node energy drawn by one query, mJ (the input, echoed).
  std::vector<double> per_query_mj;
};

/// Expected per-node energy of one query under the plan (trigger +
/// collection, failure-inflated), attributed to the transmitting child of
/// each edge as in the simulator's ledger, with receive costs already
/// folded into the symmetric message cost.
std::vector<double> ExpectedPerNodeEnergy(const QueryPlan& plan,
                                          const net::NetworkSimulator& sim);

/// Lifetime under a fixed per-query load vector.
LifetimeEstimate EstimateLifetime(const net::Topology& topology,
                                  const BatteryModel& batteries,
                                  const std::vector<double>& per_query_mj);

/// Convenience: plan -> expected load -> lifetime.
LifetimeEstimate EstimatePlanLifetime(const QueryPlan& plan,
                                      const net::NetworkSimulator& sim,
                                      const BatteryModel& batteries);

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_LIFETIME_H_
