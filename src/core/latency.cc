#include "src/core/latency.h"

#include <algorithm>
#include <vector>

namespace prospector {
namespace core {

double EstimateCollectionLatency(const QueryPlan& plan,
                                 const net::Topology& topology,
                                 const net::EnergyModel& energy,
                                 const RadioTiming& timing) {
  const int n = topology.num_nodes();
  // ready[u]: time at which u has received everything it needs.
  std::vector<double> ready(n, 0.0);
  // finish[u]: time at which u's own message is fully received upstream.
  std::vector<double> finish(n, 0.0);

  for (int u : topology.PostOrder()) {
    // Serialize this node's transmitting children on its radio,
    // earliest-ready first.
    std::vector<int> senders;
    for (int c : topology.children(u)) {
      if (plan.bandwidth[c] > 0) senders.push_back(c);
    }
    std::sort(senders.begin(), senders.end(),
              [&](int a, int b) { return ready[a] < ready[b]; });
    double radio_free = 0.0;
    for (int c : senders) {
      const double start = std::max(ready[c], radio_free);
      const double tx = timing.TransmissionSeconds(
          plan.bandwidth[c] * energy.bytes_per_value);
      finish[c] = start + tx;
      radio_free = finish[c];
    }
    ready[u] = radio_free;
  }
  return ready[topology.root()];
}

}  // namespace core
}  // namespace prospector
