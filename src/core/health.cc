#include "src/core/health.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>

namespace prospector {
namespace core {
namespace {

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

double WindowMean(const std::deque<double>& window, double empty_value) {
  if (window.empty()) return empty_value;
  const double sum = std::accumulate(window.begin(), window.end(), 0.0);
  return sum / static_cast<double>(window.size());
}

void AppendBreach(std::string* breached, const char* name) {
  if (!breached->empty()) breached->push_back(',');
  breached->append(name);
}

}  // namespace

const char* HealthStatusName(HealthStatus status) {
  switch (status) {
    case HealthStatus::kUnknown:
      return "unknown";
    case HealthStatus::kHealthy:
      return "healthy";
    case HealthStatus::kDegraded:
      return "degraded";
    case HealthStatus::kUnhealthy:
      return "unhealthy";
  }
  return "unknown";
}

void QueryHealthTracker::PushWindow(std::deque<double>* window, double v) {
  window->push_back(v);
  const size_t cap = slo_.window > 0 ? static_cast<size_t>(slo_.window) : 1;
  while (window->size() > cap) window->pop_front();
}

void QueryHealthTracker::Observe(const EpochSignals& s) {
  const bool has_recall = s.recall >= 0.0;
  const bool has_latency = s.replan_latency_ms >= 0.0;
  if (has_recall) PushWindow(&recall_window_, s.recall);
  PushWindow(&energy_window_, s.energy_mj);
  if (has_latency) PushWindow(&latency_window_, s.replan_latency_ms);
  PushWindow(&guard_window_, s.guard_rejects);

  health_.last_recall = has_recall ? s.recall : health_.last_recall;
  health_.mean_recall = WindowMean(recall_window_, -1.0);
  health_.mean_energy_mj = WindowMean(energy_window_, 0.0);
  health_.mean_replan_latency_ms = WindowMean(latency_window_, 0.0);
  health_.mean_guard_rejects = WindowMean(guard_window_, 0.0);
  if (s.predicted_recall >= 0.0) {
    health_.predicted_recall = s.predicted_recall;
  }
  health_.recall_residual =
      (health_.predicted_recall >= 0.0 && has_recall)
          ? health_.predicted_recall - s.recall
          : 0.0;

  // Score each armed SLO whose signal is present this epoch.
  std::string breached;
  bool scored = false;
  if (slo_.min_recall >= 0.0 && has_recall) {
    scored = true;
    if (s.recall < slo_.min_recall) AppendBreach(&breached, "recall");
  }
  if (slo_.max_energy_mj >= 0.0) {
    scored = true;
    if (s.energy_mj > slo_.max_energy_mj) AppendBreach(&breached, "energy");
  }
  if (slo_.max_replan_latency_ms >= 0.0 && has_latency) {
    scored = true;
    if (s.replan_latency_ms > slo_.max_replan_latency_ms) {
      AppendBreach(&breached, "replan_latency");
    }
  }
  if (slo_.max_guard_rejects >= 0.0) {
    scored = true;
    if (s.guard_rejects > slo_.max_guard_rejects) {
      AppendBreach(&breached, "guard_rejects");
    }
  }
  if (slo_.max_recall_residual >= 0.0 && has_recall &&
      health_.predicted_recall >= 0.0) {
    scored = true;
    if (health_.recall_residual > slo_.max_recall_residual) {
      AppendBreach(&breached, "recall_residual");
    }
  }

  // Epochs without any scoreable signal (e.g. explore sweeps under the
  // default recall-only SLO) leave the breach streak untouched — a sweep
  // between two bad query epochs must not silence the alarm.
  if (!scored) return;
  ++health_.scored_epochs;
  health_.breached = breached;
  if (breached.empty()) {
    health_.consecutive_breaches = 0;
    health_.status = HealthStatus::kHealthy;
  } else {
    ++health_.consecutive_breaches;
    health_.status = health_.consecutive_breaches >= slo_.breach_epochs
                         ? HealthStatus::kUnhealthy
                         : HealthStatus::kDegraded;
  }
}

namespace {

/// Shared by every per-query series: the query label plus the fleet tags
/// when present, so one exposition covers many deployments and tenants
/// without colliding series. Tag order is fixed (query, deployment,
/// tenant) — equal reports render byte-identically.
std::string QueryLabels(const QueryHealth& q) {
  std::string out = "{query=\"" + std::to_string(q.query_id) + "\"";
  if (q.deployment_id >= 0) {
    out += ",deployment=\"" + std::to_string(q.deployment_id) + "\"";
  }
  if (q.tenant_id >= 0) {
    out += ",tenant=\"" + std::to_string(q.tenant_id) + "\"";
  }
  out += "}";
  return out;
}

std::vector<HealthRollup> RollupBy(const std::vector<QueryHealth>& report,
                                   int QueryHealth::* tag) {
  std::map<int, HealthRollup> buckets;  // ordered: output ascending by id
  std::map<int, std::pair<double, int>> recall;  // id -> (sum, count)
  for (const QueryHealth& q : report) {
    const int id = q.*tag;
    HealthRollup& r = buckets[id];
    r.id = id;
    ++r.queries;
    switch (q.status) {
      case HealthStatus::kUnknown: ++r.unknown; break;
      case HealthStatus::kHealthy: ++r.healthy; break;
      case HealthStatus::kDegraded: ++r.degraded; break;
      case HealthStatus::kUnhealthy: ++r.unhealthy; break;
    }
    if (q.mean_recall >= 0.0) {
      auto& [sum, count] = recall[id];
      sum += q.mean_recall;
      ++count;
    }
    r.energy_mj += q.mean_energy_mj;
    r.max_consecutive_breaches =
        std::max(r.max_consecutive_breaches, q.consecutive_breaches);
  }
  std::vector<HealthRollup> out;
  out.reserve(buckets.size());
  for (auto& [id, r] : buckets) {
    const auto it = recall.find(id);
    if (it != recall.end() && it->second.second > 0) {
      r.mean_recall =
          it->second.first / static_cast<double>(it->second.second);
    }
    out.push_back(r);
  }
  return out;
}

std::string RollupJson(const std::vector<HealthRollup>& rollups) {
  std::string out = "[";
  bool first = true;
  for (const HealthRollup& r : rollups) {
    if (!first) out += ", ";
    first = false;
    out += "{\"id\": " + std::to_string(r.id);
    out += ", \"queries\": " + std::to_string(r.queries);
    out += ", \"unknown\": " + std::to_string(r.unknown);
    out += ", \"healthy\": " + std::to_string(r.healthy);
    out += ", \"degraded\": " + std::to_string(r.degraded);
    out += ", \"unhealthy\": " + std::to_string(r.unhealthy);
    out += ", \"mean_recall\": " + FormatDouble(r.mean_recall);
    out += ", \"energy_mj\": " + FormatDouble(r.energy_mj);
    out += ", \"max_consecutive_breaches\": " +
           std::to_string(r.max_consecutive_breaches);
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace

std::vector<HealthRollup> RollupByTenant(
    const std::vector<QueryHealth>& report) {
  return RollupBy(report, &QueryHealth::tenant_id);
}

std::vector<HealthRollup> RollupByDeployment(
    const std::vector<QueryHealth>& report) {
  return RollupBy(report, &QueryHealth::deployment_id);
}

std::string HealthRollupOpenMetricsBody(
    const char* label, const std::vector<HealthRollup>& rollups) {
  std::string out;
  const std::string prefix = std::string("prospector_") + label + "_";
  auto family = [&](const char* name) {
    out += "# TYPE " + prefix + name + " gauge\n";
  };
  auto series = [&](const char* name, int id, const std::string& v) {
    out += prefix + name + "{" + label + "=\"" + std::to_string(id) +
           "\"} " + v + "\n";
  };
  family("queries");
  for (const HealthRollup& r : rollups) {
    series("queries", r.id, std::to_string(r.queries));
  }
  family("degraded");
  for (const HealthRollup& r : rollups) {
    series("degraded", r.id, std::to_string(r.degraded));
  }
  family("unhealthy");
  for (const HealthRollup& r : rollups) {
    series("unhealthy", r.id, std::to_string(r.unhealthy));
  }
  family("recall");
  for (const HealthRollup& r : rollups) {
    series("recall", r.id, FormatDouble(r.mean_recall));
  }
  family("energy_mj");
  for (const HealthRollup& r : rollups) {
    series("energy_mj", r.id, FormatDouble(r.energy_mj));
  }
  return out;
}

std::string FleetHealthJson(const std::vector<QueryHealth>& report) {
  std::string out = "{\"queries\": " + HealthReportJson(report);
  out += ", \"tenants\": " + RollupJson(RollupByTenant(report));
  out += ", \"deployments\": " + RollupJson(RollupByDeployment(report));
  out += "}";
  return out;
}

std::string HealthOpenMetricsBody(const std::vector<QueryHealth>& report) {
  std::string out;
  auto family = [&out](const char* name, const char* type) {
    out += "# TYPE prospector_query_";
    out += name;
    out += " ";
    out += type;
    out += "\n";
  };
  auto series = [&out](const char* name, const QueryHealth& q,
                       const std::string& v) {
    out += "prospector_query_";
    out += name;
    out += QueryLabels(q) + " " + v + "\n";
  };
  family("health", "gauge");
  for (const QueryHealth& q : report) {
    series("health", q, std::to_string(static_cast<int>(q.status)));
  }
  family("recall", "gauge");
  for (const QueryHealth& q : report) {
    series("recall", q, FormatDouble(q.mean_recall));
  }
  family("energy_mj", "gauge");
  for (const QueryHealth& q : report) {
    series("energy_mj", q, FormatDouble(q.mean_energy_mj));
  }
  family("guard_rejects", "gauge");
  for (const QueryHealth& q : report) {
    series("guard_rejects", q, FormatDouble(q.mean_guard_rejects));
  }
  family("recall_residual", "gauge");
  for (const QueryHealth& q : report) {
    series("recall_residual", q, FormatDouble(q.recall_residual));
  }
  family("consecutive_breaches", "gauge");
  for (const QueryHealth& q : report) {
    series("consecutive_breaches", q,
           std::to_string(q.consecutive_breaches));
  }
  return out;
}

std::string HealthReportJson(const std::vector<QueryHealth>& report) {
  std::string out = "[";
  bool first = true;
  for (const QueryHealth& q : report) {
    if (!first) out += ", ";
    first = false;
    out += "{\"query\": " + std::to_string(q.query_id);
    out += ", \"deployment\": " + std::to_string(q.deployment_id);
    out += ", \"tenant\": " + std::to_string(q.tenant_id);
    out += ", \"status\": \"";
    out += HealthStatusName(q.status);
    out += "\", \"scored_epochs\": " + std::to_string(q.scored_epochs);
    out += ", \"consecutive_breaches\": " +
           std::to_string(q.consecutive_breaches);
    out += ", \"last_recall\": " + FormatDouble(q.last_recall);
    out += ", \"mean_recall\": " + FormatDouble(q.mean_recall);
    out += ", \"mean_energy_mj\": " + FormatDouble(q.mean_energy_mj);
    out += ", \"mean_replan_latency_ms\": " +
           FormatDouble(q.mean_replan_latency_ms);
    out += ", \"mean_guard_rejects\": " + FormatDouble(q.mean_guard_rejects);
    out += ", \"predicted_recall\": " + FormatDouble(q.predicted_recall);
    out += ", \"recall_residual\": " + FormatDouble(q.recall_residual);
    out += ", \"breached\": \"" + q.breached + "\"}";
  }
  out += "]";
  return out;
}

}  // namespace core
}  // namespace prospector
