#ifndef PROSPECTOR_CORE_PROOF_PLANNER_H_
#define PROSPECTOR_CORE_PROOF_PLANNER_H_

#include "src/core/lp_no_filter_planner.h"
#include "src/core/planner.h"

namespace prospector {
namespace core {

/// PROSPECTOR Proof (Section 4.3): optimizes the bandwidth allocation of a
/// proof-carrying plan so that, in expectation over the samples, the root
/// proves as many top-k values as possible within the energy budget.
///
/// A proof-carrying plan must use every edge (any unvisited node could
/// hold the maximum), so each bandwidth is at least 1 and the per-message
/// cost of all edges is a fixed floor; the LP spends the remaining budget
/// on bandwidth. Variables p_{j,i,a} ("the value of node i is proven by
/// its ancestor a when the plan runs on sample j") are constrained by:
///
///   sum_{i in desc(v)} p_{j,i,v} <= b_v          (bandwidth, line 12)
///   p_{j,i,a} <= p_{j,i,prev(a->i)}              (path, line 13)
///   p_{j,i,a} <= sum_{i' in desc(c), x_j(i') < x_j(i)} p_{j,i',c}
///                                                (proof, line 14)
///
/// where the proof constraint ranges over every child c of a that is not
/// on the a->i path, and is omitted when c's subtree holds no value
/// smaller than x_j(i) — the paper's (c.3) exception.
class ProofPlanner : public Planner {
 public:
  explicit ProofPlanner(LpPlannerOptions options = {}) : options_(options) {}

  /// Fails with FailedPrecondition when the budget cannot cover the
  /// mandatory floor (every edge, one value each). The returned plan has
  /// proof_carrying = true and bandwidth >= 1 on every edge.
  Result<QueryPlan> Plan(const PlannerContext& ctx,
                         const sampling::SampleSet& samples,
                         const PlanRequest& request) override;
  std::string name() const override { return "ProspectorProof"; }

  double last_lp_objective() const { return last_lp_objective_; }

  /// The mandatory cost floor of any proof-carrying plan on this network:
  /// one message with one value on every edge (failure-inflated), plus the
  /// reserved byte per non-leaf edge for the proven-count field.
  static double MinimumCost(const PlannerContext& ctx);

 private:
  LpPlannerOptions options_;
  double last_lp_objective_ = 0.0;
};

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_PROOF_PLANNER_H_
