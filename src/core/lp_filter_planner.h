#ifndef PROSPECTOR_CORE_LP_FILTER_PLANNER_H_
#define PROSPECTOR_CORE_LP_FILTER_PLANNER_H_

#include <memory>

#include "src/core/lp_no_filter_planner.h"
#include "src/core/planner.h"

namespace prospector {
namespace core {

/// PROSPECTOR LP+LF (Section 4.2): the local-filtering linear program.
///
/// One relaxed 0/1 variable y_{j,i} per 1-entry of the sample matrix
/// ("the plan returns node i's value when executed on sample j"), plus per
/// edge a use indicator z_e and a bandwidth b_e:
///
///   maximize  sum y_{j,i}
///   s.t.      y_{j,i} <= z_e                         (e above i)
///             sum_{i in ones(j) ∩ desc(e)} y_{j,i} <= b_e    (per j, e)
///             b_e <= ub_e * z_e
///             sum_e c_m(e) z_e + c_v(e) b_e <= budget.
///
/// Per-entry variables let the plan decide at run time which values to
/// forward (local filtering): a subtree can be granted less bandwidth than
/// the number of its promising nodes. Bandwidths are made integral by
/// rounding the y's and taking, per edge, the largest per-sample count of
/// rounded-up entries beneath it; budget repair then trims the bandwidths
/// whose loss costs the fewest sample hits.
class LpFilterPlanner : public Planner {
 public:
  explicit LpFilterPlanner(LpPlannerOptions options = {}) : options_(options) {}

  Result<QueryPlan> Plan(const PlannerContext& ctx,
                         const sampling::SampleSet& samples,
                         const PlanRequest& request) override;
  std::string name() const override { return "ProspectorLP+LF"; }

  double last_lp_objective() const { return last_lp_objective_; }

 private:
  LpPlannerOptions options_;
  std::unique_ptr<util::ThreadPool> pool_;
  double last_lp_objective_ = 0.0;
};

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_LP_FILTER_PLANNER_H_
