#include "src/core/query_engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/core/executor.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"

namespace prospector {
namespace core {

QueryEngine::QueryEngine(const net::Topology* topology,
                         net::EnergyModel energy, net::FailureModel failures,
                         QueryEngineOptions options, uint64_t seed)
    : topology_(topology),
      options_(options),
      workspace_(options.workspace),
      ctx_{topology, energy, failures},
      sim_(topology, energy, failures, seed),
      rng_(seed ^ 0x5e551011),
      seed_(seed),
      original_num_nodes_(topology->num_nodes()) {
  if (options_.use_workspace) ctx_.workspace = &workspace_;
  if (!options_.faults.empty()) {
    injecting_ = true;
    injector_ = net::FaultInjector(topology->num_nodes(), options_.faults,
                                   topology->root());
    sim_.set_fault_injector(&injector_);
  }
  sim_.set_lossy_transport(options_.lossy);
  sim_.set_adversarial_transport(options_.adversarial);
  // The protocol layer fences exactly when the adversary can strike
  // (config rates, scripted adversarial events, or forced on): otherwise
  // the engine runs the seed protocol verbatim — no guard, no header
  // bytes, bit-identical draws.
  guarding_ = options_.adversarial.enabled ||
              options_.faults.has_adversarial() ||
              options_.fencing == TransportFencing::kFenced;
  guard_ = TransportGuard(options_.fencing != TransportFencing::kNaive);
  if (guarding_) sim_.set_fence_header_bytes(guard_.header_bytes());
  orig_of_.resize(topology->num_nodes());
  for (int i = 0; i < topology->num_nodes(); ++i) orig_of_[i] = i;
  silent_.assign(topology->num_nodes(), 0);
}

const QueryState& QueryEngine::At(int id) const {
  const QueryState* q = registry_.Find(id);
  if (q == nullptr) {
    std::fprintf(stderr, "QueryEngine: unknown query id %d\n", id);
    std::abort();
  }
  return *q;
}

void QueryEngine::HydrateNewQuery(QueryState* q) {
  // Hydrate the newcomer's window from the sweeps already collected, so
  // it plans from the same evidence the incumbents have.
  for (const std::vector<double>& collected : history_) {
    q->samples.Add(collected);
  }
  PROSPECTOR_COUNTER_ADD("engine.queries_admitted", 1);
  PROSPECTOR_FLIGHT(kNote, "engine.admit", q->id, q->spec.k,
                    q->spec.energy_budget_mj);
}

int QueryEngine::AddQuery(const QuerySpec& spec) {
  const int id = registry_.Add(spec, topology_->num_nodes(),
                               options_.sample_window);
  HydrateNewQuery(registry_.Find(id));
  return id;
}

Result<int> QueryEngine::AddQueryWithId(int id, const QuerySpec& spec) {
  auto added = registry_.AddWithId(id, spec, topology_->num_nodes(),
                                   options_.sample_window);
  if (!added.ok()) return added.status();
  HydrateNewQuery(registry_.Find(id));
  return id;
}

bool QueryEngine::RemoveQuery(int id) {
  const bool removed = registry_.Remove(id);
  if (removed) {
    PROSPECTOR_COUNTER_ADD("engine.queries_retired", 1);
    PROSPECTOR_FLIGHT(kNote, "engine.retire", id, registry_.size(), 0);
  }
  return removed;
}

PlannerContext QueryEngine::CtxFor(int lease) const {
  PlannerContext ctx = ctx_;
  ctx.workspace_lease = lease;
  return ctx;
}

net::TransmissionStats QueryEngine::TakeRadioStats() {
  net::TransmissionStats stats = sim_.TakeStats();
  radio_totals_.Accumulate(stats);
  return stats;
}

Result<bool> QueryEngine::ReplanQuery(QueryState* q) {
  PROSPECTOR_SPAN("session.replan");
  const int64_t start_us = obs::MonotonicNowUs();
  const PlannerContext ctx = CtxFor(q->id);
  auto changed = q->manager.MaybeReplan(ctx, q->samples, &sim_);
  q->last_replan_latency_ms =
      static_cast<double>(obs::MonotonicNowUs() - start_us) / 1000.0;
  if (changed.ok() && *changed) {
    const double spent = TakeRadioStats().total_energy_mj;
    install_energy_ += spent;
    q->install_energy_mj += spent;
    // Messages stamped under the previous plan are now stale; the fence
    // refuses them at arrival.
    if (guarding_) guard_.BumpPlanEpoch();
    PROSPECTOR_COUNTER_ADD("session.replans", 1);
    PROSPECTOR_HISTOGRAM_RECORD("session.replan_latency_us",
                                q->last_replan_latency_ms * 1000.0);
    // No wall-clock in the black box (latency would break replay
    // byte-identity): record what the replan installed, not how long it
    // took.
    PROSPECTOR_FLIGHT(kReplan, "engine.replan", q->id, spent,
                      q->manager.predicted_recall());
  } else {
    TakeRadioStats();
  }
  return changed;
}

void QueryEngine::ObserveEdges(const std::vector<char>& expected,
                               const std::vector<char>& delivered) {
  if (options_.dead_after_epochs <= 0) return;
  if (expected.size() != silent_.size() ||
      delivered.size() != silent_.size()) {
    return;
  }
  for (size_t u = 0; u < expected.size(); ++u) {
    if (!expected[u]) continue;  // no evidence either way this epoch
    silent_[u] = delivered[u] ? 0 : silent_[u] + 1;
  }
}

void QueryEngine::TranslateAnswer(std::vector<Reading>* answer) const {
  if (owned_topology_ == nullptr) return;  // ids are still original
  for (Reading& r : *answer) r.node = orig_of_[r.node];
}

Result<bool> QueryEngine::MaybeHeal(TickResult* result) {
  if (options_.dead_after_epochs <= 0) return false;
  const int n = topology_->num_nodes();
  std::vector<char> suspect(n, 0);
  bool any = false;
  for (int u = 0; u < n; ++u) {
    if (u == topology_->root()) continue;
    if (silent_[u] >= options_.dead_after_epochs) {
      suspect[u] = 1;
      any = true;
    }
  }
  if (!any) return false;

  // Only topmost suspects are declared dead: everything beneath a dead
  // node is equally silent, but the break sits at the topmost dark edge —
  // killing the descendants too would throw away live hardware.
  std::vector<int> dead;
  for (int u = 0; u < n; ++u) {
    if (!suspect[u]) continue;
    bool shadowed = false;
    for (int a = topology_->parent(u); a != net::Topology::kNoParent;
         a = topology_->parent(a)) {
      if (suspect[a]) {
        shadowed = true;
        break;
      }
    }
    if (!shadowed) dead.push_back(u);
  }
  PROSPECTOR_SPAN("session.heal");
  PROSPECTOR_COUNTER_ADD("session.watchdog.declared_dead",
                         static_cast<int64_t>(dead.size()));
  PROSPECTOR_FLIGHT(kHeal, "engine.heal", -1, dead.size(),
                    topology_->num_nodes());

  auto rebuilt = net::RebuildWithoutNodes(*topology_, dead,
                                          options_.rebuild_radio_range);
  if (!rebuilt.ok()) return rebuilt.status();
  const std::vector<int>& new_id = rebuilt->new_id;
  const int new_n = rebuilt->topology.num_nodes();

  for (int i = 0; i < n; ++i) {
    if (new_id[i] < 0) result->removed_nodes.push_back(orig_of_[i]);
  }
  std::sort(result->removed_nodes.begin(), result->removed_nodes.end());

  // Re-index everything that outlives the old tree: the id translation,
  // the silence counters, every query's sample window, the shared sweep
  // history, the failure model, and pending fault events.
  std::vector<int> new_orig(new_n, -1);
  for (int i = 0; i < n; ++i) {
    if (new_id[i] >= 0) new_orig[new_id[i]] = orig_of_[i];
  }
  orig_of_ = std::move(new_orig);
  silent_.assign(new_n, 0);
  for (QueryState* q : registry_.ordered()) {
    q->samples = q->samples.Remapped(new_id, new_n);
  }
  for (std::vector<double>& collected : history_) {
    std::vector<double> remapped(new_n, 0.0);
    for (int i = 0; i < n; ++i) {
      if (new_id[i] >= 0) remapped[new_id[i]] = collected[i];
    }
    collected = std::move(remapped);
  }
  net::FailureModel failures = ctx_.failures;
  if (failures.edge_failure_prob.size() > 1) {
    std::vector<double> remapped(new_n, 0.0);
    const int covered =
        std::min<int>(n, static_cast<int>(failures.edge_failure_prob.size()));
    for (int i = 0; i < covered; ++i) {
      if (new_id[i] >= 0) remapped[new_id[i]] = failures.edge_failure_prob[i];
    }
    failures.edge_failure_prob = std::move(remapped);
  }
  if (injecting_) injector_.Remap(new_id, new_n);

  // Drain the old simulator's ledger while the topology it references is
  // still alive: replacing owned_topology_ below frees the tree a
  // previous rebuild installed, and TakeStats resizes per-node ledgers
  // off topology_->num_nodes().
  TakeRadioStats();
  owned_topology_ =
      std::make_unique<net::Topology>(std::move(rebuilt->topology));
  topology_ = owned_topology_.get();
  ctx_ = PlannerContext{topology_, ctx_.energy, failures};
  if (options_.use_workspace) {
    // The rebuilt tree is a new epoch and the remapped windows a new
    // lineage — every cache would miss; Clear releases the memory now.
    workspace_.Clear();
    ctx_.workspace = &workspace_;
  }
  ++rebuilds_;
  sim_ = net::NetworkSimulator(
      topology_, ctx_.energy, failures,
      seed_ ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(rebuilds_)));
  if (injecting_) sim_.set_fault_injector(&injector_);
  sim_.set_lossy_transport(options_.lossy);
  sim_.set_adversarial_transport(options_.adversarial);
  sim_.set_epoch(epoch_ - 1);  // MaybeHeal runs inside the current tick
  if (guarding_) {
    sim_.set_fence_header_bytes(guard_.header_bytes());
    // In-flight messages die with the old tree: their edge ids and
    // sequence state mean nothing on the rebuilt topology.
    guard_.Clear();
  }

  // Installed plans index nodes that no longer exist; replace every one
  // unconditionally on the surviving topology.
  for (QueryState* q : registry_.ordered()) {
    q->manager.InvalidatePlan();
    auto changed = ReplanQuery(q);
    if (!changed.ok()) return changed.status();
    for (QueryTickResult& qr : result->per_query) {
      if (qr.query_id == q->id && *changed) qr.replanned = true;
    }
  }
  result->rebuilt = true;
  PROSPECTOR_COUNTER_ADD("session.watchdog.rebuilds", 1);
  PROSPECTOR_COUNTER_ADD("session.watchdog.removed_nodes",
                         static_cast<int64_t>(result->removed_nodes.size()));
  return true;
}

std::vector<QueryHealth> QueryEngine::HealthReport() const {
  std::vector<QueryHealth> out;
  out.reserve(registry_.ordered().size());
  for (const QueryState* q : registry_.ordered()) {
    QueryHealth h = q->health.health();
    h.query_id = q->id;
    h.tenant_id = q->spec.tenant_id;
    h.deployment_id = options_.deployment_id;
    out.push_back(std::move(h));
  }
  return out;
}

QueryHealth QueryEngine::query_health(int id) const {
  const QueryState& q = At(id);
  QueryHealth h = q.health.health();
  h.query_id = id;
  h.tenant_id = q.spec.tenant_id;
  h.deployment_id = options_.deployment_id;
  return h;
}

void QueryEngine::UpdateHealth(TickResult* result) {
  // Guard rejections are engine-wide (a rejected arrival cannot be
  // attributed to one query on a shared radio), so every co-resident
  // query is scored against the same per-epoch delta.
  long long rejects = 0;
  if (guarding_) {
    const TransportGuard::Counters& c = guard_.counters();
    rejects = c.stale_fenced + c.corrupt_rejected;
  }
  const double guard_delta =
      static_cast<double>(rejects - guard_rejects_prev_);
  guard_rejects_prev_ = rejects;

  const std::vector<QueryState*>& queries = registry_.ordered();
  for (size_t i = 0; i < queries.size() && i < result->per_query.size();
       ++i) {
    QueryState* q = queries[i];
    QueryTickResult& qr = result->per_query[i];
    QueryHealthTracker::EpochSignals sig;
    sig.recall = qr.recall;
    sig.energy_mj = qr.energy_mj;
    sig.replan_latency_ms = qr.replanned ? q->last_replan_latency_ms : -1.0;
    sig.guard_rejects = guard_delta;
    sig.predicted_recall = q->manager.predicted_recall();
    const HealthStatus before = q->health.status();
    q->health.Observe(sig);
    qr.health = q->health.status();
    if (qr.health != before) {
      PROSPECTOR_FLIGHT(kNote, "engine.health", q->id,
                        static_cast<int>(before),
                        static_cast<int>(qr.health));
    }
  }
}

void QueryEngine::FinishTick(
    [[maybe_unused]] const TickResult& result) const {
  PROSPECTOR_COUNTER_ADD("session.values_lost",
                         static_cast<int64_t>(result.values_lost));
  if (result.degraded) {
    PROSPECTOR_COUNTER_ADD("session.degraded_epochs", 1);
  }
  PROSPECTOR_GAUGE_SET("session.degraded", result.degraded ? 1.0 : 0.0);
  PROSPECTOR_GAUGE_SET("engine.active_queries",
                       static_cast<double>(registry_.size()));
  bool any_audit = false;
  bool any_query = false;
  for (const QueryTickResult& qr : result.per_query) {
    if (qr.recall >= 0.0) {
      PROSPECTOR_HISTOGRAM_RECORD("session.recall", qr.recall);
    }
    any_audit = any_audit || qr.kind == QueryEpochKind::kAudit;
    any_query = any_query || qr.kind == QueryEpochKind::kQuery;
  }
  switch (result.kind) {
    case EpochKind::kBootstrap:
      PROSPECTOR_COUNTER_ADD("session.bootstrap_epochs", 1);
      break;
    case EpochKind::kExplore:
      PROSPECTOR_COUNTER_ADD("session.explore_epochs", 1);
      break;
    case EpochKind::kQuery:
      if (any_audit) PROSPECTOR_COUNTER_ADD("session.audit_epochs", 1);
      if (any_query) PROSPECTOR_COUNTER_ADD("session.query_epochs", 1);
      break;
    case EpochKind::kIdle:
      break;
  }
  if (result.shared_messages > 0) {
    PROSPECTOR_COUNTER_ADD("engine.shared_messages",
                           static_cast<int64_t>(result.shared_messages));
  }
  if (result.shared_values > 0) {
    PROSPECTOR_COUNTER_ADD("engine.shared_values",
                           static_cast<int64_t>(result.shared_values));
  }
}

Result<QueryEngine::TickResult> QueryEngine::Tick(
    const std::vector<double>& truth) {
  if (static_cast<int>(truth.size()) != original_num_nodes_) {
    return Status::InvalidArgument("truth vector does not match network size");
  }
  TickResult result;
  PROSPECTOR_SPAN("session.tick");
  PROSPECTOR_COUNTER_ADD("session.epochs", 1);
  const int this_epoch = epoch_++;
  PROSPECTOR_FLIGHT_EPOCH(this_epoch);
  sim_.set_epoch(this_epoch);
  if (guarding_) guard_.StartEpoch(this_epoch);
  if (injecting_) injector_.AdvanceTo(this_epoch);

  const std::vector<QueryState*>& queries = registry_.ordered();
  if (queries.empty()) {
    result.kind = EpochKind::kIdle;
    FinishTick(result);
    return result;
  }
  result.per_query.resize(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    result.per_query[i].query_id = queries[i]->id;
  }

  // Project the caller's original-indexed readings onto the current tree.
  std::vector<double> projected;
  const std::vector<double>* cur_truth = &truth;
  if (owned_topology_ != nullptr) {
    projected.resize(topology_->num_nodes());
    for (int i = 0; i < topology_->num_nodes(); ++i) {
      projected[i] = truth[orig_of_[i]];
    }
    cur_truth = &projected;
  }

  // Bootstrap and exploration epochs: ONE full sweep feeds every query's
  // window; then every query reconsiders its plan.
  const bool bootstrap = this_epoch < options_.bootstrap_sweeps;
  double explore_probability = 0.0;
  for (const auto& q : queries) {
    explore_probability =
        std::max(explore_probability, q->manager.explore_probability());
  }
  const bool explore = bootstrap || rng_.Bernoulli(explore_probability);
  if (explore) {
    result.kind = bootstrap ? EpochKind::kBootstrap : EpochKind::kExplore;
    const std::vector<double>* fallback =
        history_.empty() ? nullptr : &history_.back();
    std::vector<double> collected;
    const sampling::SweepReport sweep =
        collector_.CollectSweep(*cur_truth, &sim_, fallback, &collected);
    for (auto& q : queries) q->samples.Add(collected);
    history_.push_back(std::move(collected));
    while (options_.sample_window > 0 &&
           history_.size() > options_.sample_window) {
      history_.pop_front();
    }
    sampling_energy_ += sweep.energy_mj;
    const double share =
        sweep.energy_mj / static_cast<double>(queries.size());
    PROSPECTOR_AUDIT_ENERGY("session.explore", sweep.energy_mj,
                            sim_.stats().total_energy_mj);
    TakeRadioStats();
    result.degraded = sweep.degraded;
    result.values_lost = sweep.values_lost;
    result.energy_mj = sweep.energy_mj;
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryTickResult& qr = result.per_query[i];
      qr.kind = bootstrap ? QueryEpochKind::kBootstrap
                          : QueryEpochKind::kExplore;
      qr.energy_mj = share;
      qr.degraded = sweep.degraded;
      qr.values_lost = sweep.values_lost;
      queries[i]->sampling_energy_mj += share;
    }
    ObserveEdges(sweep.edge_expected, sweep.edge_delivered);
    auto healed = MaybeHeal(&result);
    if (!healed.ok()) return healed.status();
    // Reconsider plans once the window is primed (the heal path has
    // already replanned on the new tree).
    if (!result.rebuilt && this_epoch + 1 >= options_.bootstrap_sweeps) {
      for (size_t i = 0; i < queries.size(); ++i) {
        auto changed = ReplanQuery(queries[i]);
        if (!changed.ok()) return changed.status();
        result.per_query[i].replanned = *changed;
      }
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      if (result.per_query[i].replanned) {
        result.per_query[i].replan_latency_ms =
            queries[i]->last_replan_latency_ms;
      }
    }
    UpdateHealth(&result);
    FinishTick(result);
    return result;
  }

  result.kind = EpochKind::kQuery;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!queries[i]->manager.has_plan()) {
      auto changed = ReplanQuery(queries[i]);
      if (!changed.ok()) return changed.status();
      result.per_query[i].replanned = *changed;
    }
  }

  // Audit pass: due queries run their own proof-backed exact query (a
  // proof plan visits every node and cannot merge); the rest share the
  // superplan below.
  std::vector<size_t> sharers;
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryState* q = queries[i];
    QueryTickResult& qr = result.per_query[i];
    if (q->spec.audit_every > 0 &&
        ++q->queries_since_audit >= q->spec.audit_every) {
      q->queries_since_audit = 0;
      qr.kind = QueryEpochKind::kAudit;
      auto exact = RunProspectorExact(
          CtxFor(q->id), q->samples, q->spec.k,
          ProofPlanner::MinimumCost(ctx_) * q->spec.audit_budget_factor,
          *cur_truth, &sim_, q->spec.lp, guard());
      [[maybe_unused]] const double audit_ledger_mj =
          TakeRadioStats().total_energy_mj;
      if (!exact.ok()) return exact.status();
      PROSPECTOR_AUDIT_ENERGY("session.audit", exact->total_energy_mj(),
                              audit_ledger_mj);
      audit_energy_ += exact->total_energy_mj();
      q->audit_energy_mj += exact->total_energy_mj();
      qr.answer = exact->answer;
      TranslateAnswer(&qr.answer);
      qr.proven = exact->phase1_proven;
      qr.recall = TopKRecall(qr.answer, truth, q->spec.k);
      qr.energy_mj = exact->total_energy_mj();
      qr.degraded = exact->degraded;
      qr.values_lost = exact->values_lost;
      q->manager.ObserveAccuracy(
          static_cast<double>(exact->phase1_proven) / q->spec.k);
      result.energy_mj += exact->total_energy_mj();
      result.values_lost += exact->values_lost;
      result.degraded = result.degraded || exact->degraded;
      ObserveEdges(exact->edge_expected, exact->edge_delivered);
    } else {
      sharers.push_back(i);
    }
  }

  // Merged query epoch: one superplan, one trigger wave, one collection
  // wave; demux back into per-query answers and energy shares.
  if (!sharers.empty()) {
    std::vector<QueryPlan> plans;
    std::vector<int> ids;
    plans.reserve(sharers.size());
    ids.reserve(sharers.size());
    for (size_t i : sharers) {
      plans.push_back(queries[i]->manager.plan());
      ids.push_back(queries[i]->id);
    }
    superplan_ = MergePlans(std::move(plans), *topology_, std::move(ids));
    SuperplanResult sr = SuperplanExecutor::Execute(
        superplan_, *cur_truth, &sim_, /*include_trigger=*/true, guard());
    PROSPECTOR_AUDIT_ENERGY("session.query", sr.total_energy_mj(),
                            sim_.stats().total_energy_mj);
    TakeRadioStats();
    double attributed_sum = 0.0;
    for (double a : sr.attributed_mj) attributed_sum += a;
    PROSPECTOR_AUDIT_ENERGY("engine.superplan.attribution", attributed_sum,
                            sr.total_energy_mj());
    query_energy_ += sr.total_energy_mj();
    for (size_t s = 0; s < sharers.size(); ++s) {
      const size_t i = sharers[s];
      QueryState* q = queries[i];
      QueryTickResult& qr = result.per_query[i];
      qr.kind = QueryEpochKind::kQuery;
      qr.answer = std::move(sr.per_query[s].answer);
      TranslateAnswer(&qr.answer);
      qr.recall = TopKRecall(qr.answer, truth, q->spec.k);
      qr.energy_mj = sr.attributed_mj[s];
      qr.degraded = sr.per_query[s].degraded;
      qr.values_lost = sr.per_query[s].values_lost;
      q->query_energy_mj += sr.attributed_mj[s];
    }
    result.energy_mj += sr.total_energy_mj();
    result.values_lost += sr.values_lost;
    result.degraded = result.degraded || sr.degraded;
    result.shared_messages = sr.shared_messages;
    result.shared_values = sr.shared_values;
    ObserveEdges(sr.edge_expected, sr.edge_delivered);
  }

  auto healed = MaybeHeal(&result);
  if (!healed.ok()) return healed.status();
  for (size_t i = 0; i < queries.size(); ++i) {
    if (result.per_query[i].replanned) {
      result.per_query[i].replan_latency_ms =
          queries[i]->last_replan_latency_ms;
    }
  }
  UpdateHealth(&result);
  FinishTick(result);
  return result;
}

}  // namespace core
}  // namespace prospector
