#include "src/core/proof_executor.h"

#include <algorithm>
#include <limits>

#include "src/obs/obs.h"

namespace prospector {
namespace core {
namespace {

// Strictly-between range predicate under the ranking order.
bool InRange(const Reading& r, const Reading& lo, const Reading& hi) {
  return ReadingRanksHigher(r, lo) && ReadingRanksHigher(hi, r);
}

// Bytes of a mop-up request payload: count + two range bounds.
constexpr int kMopUpRequestBytes = 12;

}  // namespace

Reading MinusInfinityReading() {
  return {std::numeric_limits<int>::max(),
          -std::numeric_limits<double>::infinity()};
}

Reading PlusInfinityReading() {
  return {-1, std::numeric_limits<double>::infinity()};
}

ExecutionResult ProofExecutor::ExecutePhase1(const std::vector<double>& truth,
                                             bool include_trigger) {
  PROSPECTOR_SPAN("exec.proof.phase1");
  const net::Topology& topo = sim_->topology();
  const int n = topo.num_nodes();
  [[maybe_unused]] const double ledger_before_mj =
      sim_->stats().total_energy_mj;
  ExecutionResult result;
  if (include_trigger) {
    result.trigger_energy_mj = ChargeTriggerCost(*plan_, sim_);
  }

  retrieved_.assign(n, {});
  proven_count_.assign(n, 0);
  sent_count_.assign(n, 0);
  sent_proven_.assign(n, 0);
  worst_proven_sent_.assign(n, Reading{});
  degraded_ = false;
  mopup_drops_ = 0;
  mopup_values_lost_ = 0;
  mopup_values_moved_ = 0;
  mopup_requests_ = 0;
  InitLinkEvidence(n, &result);
  std::vector<std::vector<Reading>> sent(n);   // what each node passed up
  // Stale payloads the naive protocol folds at the parent (deferred
  // messages landing this epoch); always empty under fencing.
  std::vector<std::vector<Reading>> stale_in(n);
  std::vector<int>& sent_proven = sent_proven_;

  double collection = 0.0;
  for (int u : topo.PostOrder()) {
    const bool is_root = u == topo.root();
    if (!is_root && guard_ != nullptr) {
      for (DelayedMessage& m :
           guard_->DrainArrivals(GuardChannel::kProof, u)) {
        for (const std::vector<Reading>& flow : m.flows) {
          stale_in[u].insert(stale_in[u].end(), flow.begin(), flow.end());
        }
      }
    }
    if (!is_root && !sim_->node_alive(u)) {
      // A dead node takes no reading and forwards nothing. Proof plans
      // visit every node (bandwidth >= 1), so its silence is watchdog
      // evidence. Its children's deliveries already failed at their own
      // TryUnicast (the shared edge endpoint is down).
      result.edge_expected[u] = 1;
      result.degraded = true;
      continue;
    }
    // Step 1+2: own reading plus children's lists, sorted best-first.
    std::vector<Reading>& mem = retrieved_[u];
    if (!is_root) collection += sim_->ChargeAcquisition(u);
    mem.push_back({u, truth[u]});
    for (int c : topo.children(u)) {
      mem.insert(mem.end(), sent[c].begin(), sent[c].end());
      // Naive protocol only: stale deferred payloads fold in as if fresh
      // (they carry no proven evidence, but they do pollute the answer).
      mem.insert(mem.end(), stale_in[c].begin(), stale_in[c].end());
    }
    SortReadings(&mem);

    const int budget =
        is_root ? static_cast<int>(mem.size()) : plan_->bandwidth[u];
    const int out_count = std::min<int>(budget, static_cast<int>(mem.size()));

    // Step 3: prove the longest prefix of the outgoing list. A value x is
    // proven iff every child c certifies it: (c.1) x is one of c's proven
    // values, (c.2) c proved some value ranking below x, or (c.3) c
    // returned its entire subtree.
    int proven = 0;
    for (; proven < out_count; ++proven) {
      const Reading& x = mem[proven];
      bool ok = true;
      for (int c : topo.children(u)) {
        const std::vector<Reading>& lc = sent[c];
        const int tc = sent_proven[c];
        if (static_cast<int>(lc.size()) == topo.subtree_size(c)) {
          continue;  // (c.3): everything below c is visible
        }
        if (topo.IsAncestorOf(c, x.node)) {
          // (c.1): x must be within c's proven prefix.
          bool found = false;
          for (int r = 0; r < tc; ++r) {
            if (lc[r].node == x.node) {
              found = true;
              break;
            }
          }
          if (!found) ok = false;
        } else {
          // (c.2): c's worst proven value must rank below x.
          if (tc == 0 || !ReadingRanksHigher(x, lc[tc - 1])) ok = false;
        }
        if (!ok) break;
      }
      if (!ok) break;
    }
    proven_count_[u] = proven;

    if (is_root) break;

    // Step 4: pass the top-bandwidth values up, with the proven count
    // appended when it is informative (Section 4.3's byte optimization).
    sent[u].assign(mem.begin(), mem.begin() + out_count);
    sent_proven[u] = proven;
    sent_count_[u] = out_count;
    if (proven > 0) worst_proven_sent_[u] = mem[proven - 1];
    const int extra = proven < out_count ? 1 : 0;
    result.edge_expected[u] = 1;
    const FencedHeader header =
        guard_ != nullptr ? guard_->Stamp(u) : FencedHeader{};
    const int hdr = guard_ != nullptr ? guard_->header_bytes() : 0;
    const net::DeliveryResult up = sim_->TryUnicast(u, out_count, extra + hdr);
    collection += up.energy_mj;
    int copies = up.arrived_now() ? 1 : 0;
    const bool deferred =
        up.delivered && !up.corrupted && up.delayed_until_epoch >= 0;
    if (guard_ != nullptr) {
      if (deferred) {
        DelayedMessage parked;
        parked.channel = GuardChannel::kProof;
        parked.child_edge = u;
        parked.arrival_epoch = up.delayed_until_epoch;
        parked.header = header;
        parked.flows.push_back(sent[u]);
        parked.aux = proven;
        guard_->Defer(std::move(parked));
        copies = 0;
      } else {
        copies = guard_->AdmitCopies(up, header, u);
      }
    }
    if (copies > 0) {
      result.edge_delivered[u] = 1;
      // Naive duplicates fold the list again: the parent's (c.3) check
      // (|list| == subtree size) can now falsely certify — exactly the
      // overclaimed proof the fence exists to prevent.
      if (copies > 1) {
        const std::vector<Reading> once(sent[u].begin(),
                                        sent[u].begin() + out_count);
        for (int rep = 1; rep < copies; ++rep) {
          sent[u].insert(sent[u].end(), once.begin(), once.end());
        }
      }
    } else {
      // The parent hears nothing: from its viewpoint this child sent an
      // empty list with zero proven values, so conditions (c.1)-(c.3)
      // under-claim above it. Local memory stays intact for mop-up.
      sent[u].clear();
      sent_proven[u] = 0;
      sent_count_[u] = 0;
      if (deferred) {
        ++result.messages_deferred;
      } else {
        ++result.messages_dropped;
      }
      result.values_lost += out_count;
      result.degraded = true;
    }
  }

  FinalizeSubtreeLiveness(topo, &result);

  result.collection_energy_mj = collection;
  result.arrived = retrieved_[topo.root()];
  result.answer = result.arrived;
  if (static_cast<int>(result.answer.size()) > plan_->k) {
    result.answer.resize(plan_->k);
  }
  result.proven_count =
      std::min<int>(proven_count_[topo.root()],
                    static_cast<int>(result.answer.size()));
  degraded_ = degraded_ || result.degraded;
  phase1_done_ = true;
  PROSPECTOR_AUDIT_ENERGY("executor.proof_phase1", result.total_energy_mj(),
                          sim_->stats().total_energy_mj - ledger_before_mj);
  PROSPECTOR_COUNTER_ADD("exec.proof.phase1_runs", 1);
  return result;
}

bool ProofExecutor::SendMopUpReply(int c,
                                   const std::vector<Reading>& readings,
                                   std::vector<Reading>* fetched) {
  mopup_values_moved_ += static_cast<int>(readings.size());
  const FencedHeader header =
      guard_ != nullptr ? guard_->Stamp(c) : FencedHeader{};
  const int hdr = guard_ != nullptr ? guard_->header_bytes() : 0;
  const net::DeliveryResult up =
      sim_->TryUnicast(c, static_cast<int>(readings.size()), hdr);
  int copies = up.arrived_now() ? 1 : 0;
  if (guard_ != nullptr) {
    if (up.delivered && !up.corrupted && up.delayed_until_epoch >= 0) {
      DelayedMessage parked;
      parked.channel = GuardChannel::kProof;
      parked.child_edge = c;
      parked.arrival_epoch = up.delayed_until_epoch;
      parked.header = header;
      parked.flows.push_back(readings);
      guard_->Defer(std::move(parked));
      copies = 0;
    } else {
      copies = guard_->AdmitCopies(up, header, c);
    }
  }
  if (copies == 0) {
    ++mopup_drops_;
    mopup_values_lost_ += static_cast<int>(readings.size());
    degraded_ = true;
    return false;
  }
  // Naive duplicates append again; the caller's by-node-id merge absorbs
  // them (mop-up was already idempotent there).
  for (int rep = 0; rep < copies; ++rep) {
    fetched->insert(fetched->end(), readings.begin(), readings.end());
  }
  return true;
}

ProofExecutor::MopUpReply ProofExecutor::MopUpAtNode(int u, int t,
                                                     const Reading& lo,
                                                     const Reading& hi) {
  const net::Topology& topo = sim_->topology();
  std::vector<Reading>& mem = retrieved_[u];  // sorted best-first

  // Narrow the request: proven in-range values are already in memory.
  int served = 0;
  for (int r = 0; r < proven_count_[u]; ++r) {
    if (InRange(mem[r], lo, hi)) ++served;
  }
  const int t_prime = t - served;

  if (t_prime > 0 && !topo.children(u).empty()) {
    // lo': the t'-th best unproven retrieved reading in range — anything a
    // child could still contribute to the top t must outrank it.
    Reading lo_prime = lo;
    int unproven_in_range = 0;
    for (size_t r = proven_count_[u]; r < mem.size(); ++r) {
      if (InRange(mem[r], lo, hi)) {
        ++unproven_in_range;
        if (unproven_in_range == t_prime) {
          lo_prime = mem[r];
          break;
        }
      }
    }
    // hi': every subtree value outranking the worst proven one is already
    // proven and retrieved.
    Reading hi_prime = hi;
    if (proven_count_[u] > 0 &&
        ReadingRanksHigher(hi_prime, mem[proven_count_[u] - 1])) {
      hi_prime = mem[proven_count_[u] - 1];
    }

    if (ReadingRanksHigher(hi_prime, lo_prime)) {
      std::vector<Reading> fetched;
      if (mode_ == MopUpMode::kBroadcast) {
        sim_->BroadcastPayload(u, kMopUpRequestBytes);
        ++mopup_requests_;
        for (int c : topo.children(u)) {
          // A dead or partitioned child never hears the broadcast.
          if (!sim_->edge_usable(c)) {
            degraded_ = true;
            continue;
          }
          MopUpReply reply = MopUpAtNode(c, t_prime, lo_prime, hi_prime);
          SendMopUpReply(c, reply.readings, &fetched);
        }
      } else {
        for (int c : topo.children(u)) {
          if (!sim_->edge_usable(c)) {
            degraded_ = true;
            continue;
          }
          // A child that transmitted its whole subtree in phase 1 has
          // nothing left to reveal.
          if (sent_count_[c] == topo.subtree_size(c)) continue;
          // By Lemma 1, anything in c's subtree ranking above c's worst
          // proven transmitted value was itself proven and transmitted;
          // tighten this child's upper bound accordingly.
          Reading hi_c = hi_prime;
          if (sent_proven_[c] > 0 &&
              ReadingRanksHigher(hi_c, worst_proven_sent_[c])) {
            hi_c = worst_proven_sent_[c];
          }
          if (!ReadingRanksHigher(hi_c, lo_prime)) continue;  // empty range
          // Tailored request down; a lost, corrupted, or deferred request
          // means the child never answers this round (requests are not
          // parked — a stale request would be fenced at the child anyway).
          const FencedHeader req_header =
              guard_ != nullptr ? guard_->Stamp(c) : FencedHeader{};
          const int hdr = guard_ != nullptr ? guard_->header_bytes() : 0;
          const net::DeliveryResult req =
              sim_->TryUnicast(c, 0, kMopUpRequestBytes + hdr);
          ++mopup_requests_;
          const bool heard = guard_ != nullptr
                                 ? guard_->AdmitCopies(req, req_header, c) > 0
                                 : req.arrived_now();
          if (!heard) {
            ++mopup_drops_;
            degraded_ = true;
            continue;
          }
          MopUpReply reply = MopUpAtNode(c, t_prime, lo_prime, hi_c);
          SendMopUpReply(c, reply.readings, &fetched);
        }
      }
      // Merge, deduplicating by node id (proven values a child re-serves
      // from memory may already be here).
      std::vector<char> have(topo.num_nodes(), 0);
      for (const Reading& r : mem) have[r.node] = 1;
      for (const Reading& r : fetched) {
        if (!have[r.node]) {
          have[r.node] = 1;
          mem.push_back(r);
        }
      }
      SortReadings(&mem);
    }
  }

  MopUpReply reply;
  for (const Reading& r : mem) {
    if (static_cast<int>(reply.readings.size()) >= t) break;
    if (InRange(r, lo, hi)) reply.readings.push_back(r);
  }
  return reply;
}

ExecutionResult ProofExecutor::ExecuteMopUp() {
  PROSPECTOR_SPAN("exec.proof.mopup");
  ExecutionResult result;
  if (!phase1_done_) return result;
  mopup_values_moved_ = 0;
  mopup_requests_ = 0;
  const net::Topology& topo = sim_->topology();
  const double energy_before = sim_->stats().total_energy_mj;

  MopUpAtNode(topo.root(), plan_->k, MinusInfinityReading(),
              PlusInfinityReading());

  result.collection_energy_mj = sim_->stats().total_energy_mj - energy_before;
  result.arrived = retrieved_[topo.root()];
  result.answer = result.arrived;
  if (static_cast<int>(result.answer.size()) > plan_->k) {
    result.answer.resize(plan_->k);
  }
  result.messages_dropped = mopup_drops_;
  result.values_lost = mopup_values_lost_;
  result.degraded = degraded_;
  if (degraded_) {
    // Losses void the exactness claim; fall back to the phase-1 root
    // certificate, which mop-up merges can only extend, never invalidate
    // (a proven prefix is the true global top — nothing fetched later can
    // outrank it).
    result.proven_count =
        std::min<int>(proven_count_[topo.root()],
                      static_cast<int>(result.answer.size()));
  } else {
    result.proven_count = static_cast<int>(result.answer.size());
  }
  PROSPECTOR_COUNTER_ADD("exec.mopup.runs", 1);
  PROSPECTOR_COUNTER_ADD("exec.mopup.requests", mopup_requests_);
  PROSPECTOR_COUNTER_ADD("exec.mopup.values_moved", mopup_values_moved_);
  PROSPECTOR_COUNTER_ADD("exec.mopup.values_lost", mopup_values_lost_);
  if (degraded_) {
    PROSPECTOR_FLIGHT(kNote, "exec.proof.degraded", -1, mopup_values_lost_,
                      result.proven_count);
  }
  return result;
}

}  // namespace core
}  // namespace prospector
