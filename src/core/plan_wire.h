#ifndef PROSPECTOR_CORE_PLAN_WIRE_H_
#define PROSPECTOR_CORE_PLAN_WIRE_H_

#include <cstdint>
#include <vector>

#include "src/core/plan.h"
#include "src/net/topology.h"
#include "src/util/status.h"

namespace prospector {
namespace core {

/// Wire encoding of query plans — what the initial distribution phase
/// actually ships (Section 2: "each node sends a subplan to each of its
/// children using a unicast message ... each node stores its part of the
/// plan, i.e., how many values it expects from each of its children and
/// how many values need to be returned to its parent").
///
/// Version-0 subplan layout (byte-exact, little-endian):
///   [0]    flags: bit0 proof-carrying, bit1 node-selection, bit2 chosen
///   [1]    k (uint8, capped at 255)
///   [2]    own outgoing bandwidth (uint8, capped)
///   [3]    number of participating children m (uint8)
///   then m x { varint child id, uint8 child bandwidth }
/// Varints are LEB128 (1 byte for ids < 128 — the common case).
///
/// Versioned layout (format evolution; see DESIGN.md "Multi-query
/// engine"): a leading tag byte 0xC0|version, then the version body.
/// Version-0 flags only ever use bits 0-2, so a tag byte is unambiguous
/// and version-0 blobs (no tag) stay readable forever. Version 1 extends
/// the version-0 body with per-query demux entries for merged superplans:
///   [tag 0xC1] <version-0 body> [nq] then nq x { varint query id,
///   uint8 query k, uint8 query outgoing bandwidth }
/// Encoding is conservative: a subplan with no query entries serializes
/// as version 0, so single-query deployments (and their charged install
/// bytes) are bit-identical to the historical format.
constexpr uint8_t kSubplanVersionTag = 0xC0;  ///< tag byte = 0xC0 | version
constexpr int kSubplanWireVersion = 1;        ///< newest writable version

/// Per-query demux entry of a merged superplan's subplan: how many values
/// this node may forward for that query, and the query's k.
struct SubplanQueryEntry {
  int query_id = 0;
  uint8_t k = 0;
  uint8_t bandwidth = 0;

  bool operator==(const SubplanQueryEntry& o) const {
    return query_id == o.query_id && k == o.k && bandwidth == o.bandwidth;
  }
};

struct Subplan {
  bool proof_carrying = false;
  bool node_selection = false;
  bool chosen = false;  ///< node-selection plans: acquire own reading?
  uint8_t k = 0;
  uint8_t outgoing_bandwidth = 0;
  std::vector<std::pair<int, uint8_t>> child_bandwidth;
  /// Merged superplans only (version >= 1 on the wire): per-query limits.
  std::vector<SubplanQueryEntry> query_entries;
};

/// Extracts the subplan node `node` must store.
Subplan SubplanFor(const QueryPlan& plan, const net::Topology& topology,
                   int node);

/// Serializes / parses the wire form. Encode writes version 0 when the
/// subplan carries no query entries and version 1 otherwise; Decode reads
/// both (backward-compatible with pre-versioning blobs).
std::vector<uint8_t> EncodeSubplan(const Subplan& subplan);
Result<Subplan> DecodeSubplan(const std::vector<uint8_t>& bytes);

/// Wire version of an encoded blob: 0 for legacy (untagged) subplans, the
/// tagged version otherwise; -1 for an empty buffer.
int SubplanWireVersion(const std::vector<uint8_t>& bytes);

/// Exact wire size of node's subplan message body, in bytes.
int SubplanWireBytes(const QueryPlan& plan, const net::Topology& topology,
                     int node);

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_PLAN_WIRE_H_
