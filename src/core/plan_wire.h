#ifndef PROSPECTOR_CORE_PLAN_WIRE_H_
#define PROSPECTOR_CORE_PLAN_WIRE_H_

#include <cstdint>
#include <vector>

#include "src/core/plan.h"
#include "src/net/topology.h"
#include "src/util/status.h"

namespace prospector {
namespace core {

/// Wire encoding of query plans — what the initial distribution phase
/// actually ships (Section 2: "each node sends a subplan to each of its
/// children using a unicast message ... each node stores its part of the
/// plan, i.e., how many values it expects from each of its children and
/// how many values need to be returned to its parent").
///
/// Subplan layout (byte-exact, little-endian):
///   [0]    flags: bit0 proof-carrying, bit1 node-selection, bit2 chosen
///   [1]    k (uint8, capped at 255)
///   [2]    own outgoing bandwidth (uint8, capped)
///   [3]    number of participating children m (uint8)
///   then m x { varint child id, uint8 child bandwidth }
/// Varints are LEB128 (1 byte for ids < 128 — the common case).
struct Subplan {
  bool proof_carrying = false;
  bool node_selection = false;
  bool chosen = false;  ///< node-selection plans: acquire own reading?
  uint8_t k = 0;
  uint8_t outgoing_bandwidth = 0;
  std::vector<std::pair<int, uint8_t>> child_bandwidth;
};

/// Extracts the subplan node `node` must store.
Subplan SubplanFor(const QueryPlan& plan, const net::Topology& topology,
                   int node);

/// Serializes / parses the wire form.
std::vector<uint8_t> EncodeSubplan(const Subplan& subplan);
Result<Subplan> DecodeSubplan(const std::vector<uint8_t>& bytes);

/// Exact wire size of node's subplan message body, in bytes.
int SubplanWireBytes(const QueryPlan& plan, const net::Topology& topology,
                     int node);

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_PLAN_WIRE_H_
