#ifndef PROSPECTOR_CORE_PLAN_WIRE_H_
#define PROSPECTOR_CORE_PLAN_WIRE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/core/plan.h"
#include "src/net/topology.h"
#include "src/util/status.h"

namespace prospector {
namespace core {

/// Wire encoding of query plans — what the initial distribution phase
/// actually ships (Section 2: "each node sends a subplan to each of its
/// children using a unicast message ... each node stores its part of the
/// plan, i.e., how many values it expects from each of its children and
/// how many values need to be returned to its parent").
///
/// Version-0 subplan layout (byte-exact, little-endian):
///   [0]    flags: bit0 proof-carrying, bit1 node-selection, bit2 chosen
///   [1]    k (uint8)
///   [2]    own outgoing bandwidth (uint8)
///   [3]    number of participating children m (uint8)
///   then m x { varint child id, uint8 child bandwidth }
/// Varints are LEB128 (1 byte for ids < 128 — the common case).
///
/// Versioned layout (format evolution; see DESIGN.md "Wire format"): a
/// leading tag byte 0xC0|version, then the version body. Version-0 flags
/// only ever use bits 0-2, so a tag byte is unambiguous and version-0
/// blobs (no tag) stay readable forever.
///
/// Version 1 extends the version-0 body with per-query demux entries for
/// merged superplans:
///   [tag 0xC1] <version-0 body> [nq] then nq x { varint query id,
///   uint8 query k, uint8 query outgoing bandwidth }
///
/// Version 2 widens every count and value to a varint, for plans whose
/// k, bandwidths, child count, or query count exceed 255 (the silent
/// Cap255 truncation bugs of the uint8 encodings):
///   [tag 0xC2] [flags] varint k, varint outgoing bandwidth,
///   varint m, m x { varint child id, varint child bandwidth },
///   varint nq, nq x { varint query id, varint k, varint bandwidth }
///
/// Encoding is *canonically minimal*: the encoder picks the lowest
/// version that represents the subplan exactly (v0 for single-query
/// subplans that fit in bytes, v1 when query entries are present, v2 only
/// on overflow), and the decoder rejects non-minimal encodings as well as
/// overlong varints. This makes the mapping between subplans and blobs a
/// bijection — decode(encode(x)) == x and encode(decode(b)) == b — which
/// is what lets the golden vectors in spec/test-vectors/ pin the format
/// byte-for-byte. Single-query deployments (and their charged install
/// bytes) remain bit-identical to the historical untagged format.
constexpr uint8_t kSubplanVersionTag = 0xC0;  ///< tag byte = 0xC0 | version
constexpr int kSubplanWireVersion = 2;        ///< newest writable version

/// Largest value any wire field may carry: value fields are varint-coded
/// uint32 on the wire but held in `int` in memory, so the format caps
/// them at INT32_MAX rather than UINT32_MAX.
constexpr int kSubplanMaxFieldValue = 0x7fffffff;

/// Per-query demux entry of a merged superplan's subplan: how many values
/// this node may forward for that query, and the query's k.
struct SubplanQueryEntry {
  int query_id = 0;
  int k = 0;
  int bandwidth = 0;

  bool operator==(const SubplanQueryEntry& o) const {
    return query_id == o.query_id && k == o.k && bandwidth == o.bandwidth;
  }
};

struct Subplan {
  bool proof_carrying = false;
  bool node_selection = false;
  bool chosen = false;  ///< node-selection plans: acquire own reading?
  int k = 0;
  int outgoing_bandwidth = 0;
  std::vector<std::pair<int, int>> child_bandwidth;
  /// Merged superplans only (version >= 1 on the wire): per-query limits.
  std::vector<SubplanQueryEntry> query_entries;

  bool operator==(const Subplan& o) const {
    return proof_carrying == o.proof_carrying &&
           node_selection == o.node_selection && chosen == o.chosen &&
           k == o.k && outgoing_bandwidth == o.outgoing_bandwidth &&
           child_bandwidth == o.child_bandwidth &&
           query_entries == o.query_entries;
  }
};

/// Extracts the subplan node `node` must store. Field values are carried
/// exactly — a plan with k or bandwidths beyond 255 serializes under wire
/// version 2 instead of being silently clamped.
Subplan SubplanFor(const QueryPlan& plan, const net::Topology& topology,
                   int node);

/// Serializes the wire form under the lowest version that represents the
/// subplan exactly (see above). Fails with InvalidArgument — never
/// truncates — when a field is negative or exceeds kSubplanMaxFieldValue.
Result<std::vector<uint8_t>> EncodeSubplan(const Subplan& subplan);

/// Parses any wire version. Strictly canonical: rejects overlong varints,
/// non-minimal version choices, trailing bytes, and out-of-range fields,
/// so every accepted blob is byte-identical to re-encoding its decode.
Result<Subplan> DecodeSubplan(const std::vector<uint8_t>& bytes);

/// Wire version of an encoded blob: 0 for legacy (untagged) subplans, the
/// tagged version otherwise; -1 for an empty buffer.
int SubplanWireVersion(const std::vector<uint8_t>& bytes);

/// Exact wire size of node's subplan message body, in bytes. The plan
/// must be encodable (non-negative bandwidths on used edges and k >= 0 —
/// guaranteed for Normalize()d planner output); aborts otherwise, since
/// install-cost accounting has no error channel.
int SubplanWireBytes(const QueryPlan& plan, const net::Topology& topology,
                     int node);

/// End-to-end wire fidelity check for a plan about to be installed: for
/// every participating node, the subplan encodes, decodes, and the decode
/// equals both the subplan and the plan's own k / bandwidth values. A
/// failure means the executor would run a different plan than the one the
/// optimizer certified (the class of bug the Cap255 clamps used to hide).
/// Returns OK or the first violation.
Status VerifyPlanWireFidelity(const QueryPlan& plan,
                              const net::Topology& topology);

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_PLAN_WIRE_H_
