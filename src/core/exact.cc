#include "src/core/exact.h"

namespace prospector {
namespace core {

Result<ExactResult> RunProspectorExact(const PlannerContext& ctx,
                                       const sampling::SampleSet& samples,
                                       int k, double phase1_budget_mj,
                                       const std::vector<double>& truth,
                                       net::NetworkSimulator* sim,
                                       const LpPlannerOptions& options,
                                       TransportGuard* guard) {
  ProofPlanner planner(options);
  PlanRequest request;
  request.k = k;
  request.energy_budget_mj = phase1_budget_mj;
  auto plan = planner.Plan(ctx, samples, request);
  if (!plan.ok()) return plan.status();

  ExactResult result;
  ProofExecutor executor(&plan.value(), sim, MopUpMode::kBroadcast, guard);
  ExecutionResult phase1 = executor.ExecutePhase1(truth);
  result.phase1_energy_mj = phase1.total_energy_mj();
  result.phase1_proven = phase1.proven_count;
  result.degraded = phase1.degraded;
  result.values_lost = phase1.values_lost;
  result.edge_expected = phase1.edge_expected;
  result.edge_delivered = phase1.edge_delivered;

  if (phase1.proven_count >= std::min<int>(k, ctx.topology->num_nodes())) {
    result.answer = phase1.answer;
    return result;
  }
  result.needed_phase2 = true;
  ExecutionResult phase2 = executor.ExecuteMopUp();
  result.phase2_energy_mj = phase2.total_energy_mj();
  result.answer = phase2.answer;
  result.degraded = result.degraded || phase2.degraded;
  result.values_lost += phase2.values_lost;
  return result;
}

}  // namespace core
}  // namespace prospector
