#ifndef PROSPECTOR_CORE_EXACT_H_
#define PROSPECTOR_CORE_EXACT_H_

#include <vector>

#include "src/core/proof_executor.h"
#include "src/core/proof_planner.h"

namespace prospector {
namespace core {

/// Outcome of a PROSPECTOR Exact run.
struct ExactResult {
  /// Top-k, best-first. Exact (guaranteed regardless of sample accuracy)
  /// unless `degraded` is set; then it is best-effort over what survived
  /// and `phase1_proven` is the only certified prefix.
  std::vector<Reading> answer;
  /// How many of the answer entries phase 1 already proved.
  int phase1_proven = 0;
  bool needed_phase2 = false;
  double phase1_energy_mj = 0.0;
  double phase2_energy_mj = 0.0;

  /// Loss accounting under fault injection / lossy transport. The edge
  /// vectors come from phase 1 (where every node is expected to report),
  /// so a Session audit can feed them to its watchdog; `degraded` and
  /// `values_lost` cover both phases.
  bool degraded = false;
  int values_lost = 0;
  std::vector<char> edge_expected;
  std::vector<char> edge_delivered;

  double total_energy_mj() const {
    return phase1_energy_mj + phase2_energy_mj;
  }
};

/// PROSPECTOR Exact (Section 4.3): plan a proof-carrying phase 1 within
/// `phase1_budget_mj`, execute it, and if the root fails to prove all k
/// values, run the mop-up phase to retrieve the rest exactly. Sample
/// knowledge only affects cost, never correctness.
///
/// Charges all messages (trigger + both phases) to `sim`. `guard`
/// (optional) applies the fenced transport protocol to both phases — see
/// CollectionExecutor::Execute.
Result<ExactResult> RunProspectorExact(const PlannerContext& ctx,
                                       const sampling::SampleSet& samples,
                                       int k, double phase1_budget_mj,
                                       const std::vector<double>& truth,
                                       net::NetworkSimulator* sim,
                                       const LpPlannerOptions& options = {},
                                       TransportGuard* guard = nullptr);

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_EXACT_H_
