#ifndef PROSPECTOR_CORE_EXACT_H_
#define PROSPECTOR_CORE_EXACT_H_

#include <vector>

#include "src/core/proof_executor.h"
#include "src/core/proof_planner.h"

namespace prospector {
namespace core {

/// Outcome of a PROSPECTOR Exact run.
struct ExactResult {
  /// Exact top-k, best-first (guaranteed regardless of sample accuracy).
  std::vector<Reading> answer;
  /// How many of the answer entries phase 1 already proved.
  int phase1_proven = 0;
  bool needed_phase2 = false;
  double phase1_energy_mj = 0.0;
  double phase2_energy_mj = 0.0;

  double total_energy_mj() const {
    return phase1_energy_mj + phase2_energy_mj;
  }
};

/// PROSPECTOR Exact (Section 4.3): plan a proof-carrying phase 1 within
/// `phase1_budget_mj`, execute it, and if the root fails to prove all k
/// values, run the mop-up phase to retrieve the rest exactly. Sample
/// knowledge only affects cost, never correctness.
///
/// Charges all messages (trigger + both phases) to `sim`.
Result<ExactResult> RunProspectorExact(const PlannerContext& ctx,
                                       const sampling::SampleSet& samples,
                                       int k, double phase1_budget_mj,
                                       const std::vector<double>& truth,
                                       net::NetworkSimulator* sim,
                                       const LpPlannerOptions& options = {});

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_EXACT_H_
