#include "src/core/lifetime.h"

#include <algorithm>
#include <limits>

namespace prospector {
namespace core {

std::vector<double> ExpectedPerNodeEnergy(const QueryPlan& plan,
                                          const net::NetworkSimulator& sim) {
  const net::Topology& topo = sim.topology();
  std::vector<double> load(topo.num_nodes(), 0.0);
  const double acquisition = sim.energy_model().acquisition_mj;
  for (int e = 1; e < topo.num_nodes(); ++e) {
    if (plan.bandwidth[e] > 0) {
      load[e] += sim.ExpectedUnicastCost(e, plan.bandwidth[e]);
      if (plan.kind == PlanKind::kBandwidth || plan.chosen[e]) {
        load[e] += acquisition;
      }
    }
  }
  // Trigger broadcasts, attributed to the broadcasting node.
  for (int u = 0; u < topo.num_nodes(); ++u) {
    for (int c : topo.children(u)) {
      if (plan.UsesEdge(c)) {
        load[u] += sim.energy_model().BroadcastCost();
        break;
      }
    }
  }
  return load;
}

LifetimeEstimate EstimateLifetime(const net::Topology& topology,
                                  const BatteryModel& batteries,
                                  const std::vector<double>& per_query_mj) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  LifetimeEstimate est;
  est.per_query_mj = per_query_mj;
  est.queries_until_first_death = kInf;
  est.queries_until_partition = kInf;

  const int n = topology.num_nodes();
  std::vector<double> death_at(n, kInf);
  for (int u = 0; u < n; ++u) {
    if (per_query_mj[u] > 0.0) {
      death_at[u] = batteries.capacity_mj[u] / per_query_mj[u];
      if (death_at[u] < est.queries_until_first_death) {
        est.queries_until_first_death = death_at[u];
        est.first_casualty = u;
      }
    }
  }

  // Partition: a dying node silences its whole subtree in the fixed tree
  // (Section 4.4's rebuild/re-plan machinery would recover; this estimate
  // is for a static plan). The earliest death of a node that still
  // shields active demand below it ends coverage.
  for (int u = 1; u < n; ++u) {
    if (death_at[u] == kInf) continue;
    bool shields_demand = false;
    for (int d : topology.DescendantsOf(u)) {
      if (d != u && per_query_mj[d] > 0.0) {
        shields_demand = true;
        break;
      }
    }
    if (shields_demand) {
      est.queries_until_partition =
          std::min(est.queries_until_partition, death_at[u]);
    }
  }
  return est;
}

LifetimeEstimate EstimatePlanLifetime(const QueryPlan& plan,
                                      const net::NetworkSimulator& sim,
                                      const BatteryModel& batteries) {
  return EstimateLifetime(sim.topology(), batteries,
                          ExpectedPerNodeEnergy(plan, sim));
}

}  // namespace core
}  // namespace prospector
