#include "src/core/plan_merge.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/obs/obs.h"

namespace prospector {
namespace core {
namespace {

bool PlanAcquiresAt(const QueryPlan& plan, int node) {
  if (plan.kind == PlanKind::kBandwidth) return plan.bandwidth[node] > 0;
  return node < static_cast<int>(plan.chosen.size()) && plan.chosen[node];
}

}  // namespace

Superplan MergePlans(std::vector<QueryPlan> plans,
                     const net::Topology& topology,
                     std::vector<int> query_ids) {
  const int n = topology.num_nodes();
  Superplan sp;
  if (query_ids.empty()) {
    query_ids.resize(plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
      query_ids[i] = static_cast<int>(i);
    }
  }
  if (query_ids.size() != plans.size()) {
    std::fprintf(stderr, "MergePlans: %zu ids for %zu plans\n",
                 query_ids.size(), plans.size());
    std::abort();
  }
  sp.query_ids = std::move(query_ids);
  sp.plans = std::move(plans);

  sp.merged.kind = PlanKind::kBandwidth;
  sp.merged.k = 0;
  sp.merged.bandwidth.assign(n, 0);
  for (QueryPlan& p : sp.plans) {
    p.Normalize(topology);
    sp.merged.k = std::max(sp.merged.k, p.k);
    for (int u = 0; u < n; ++u) {
      sp.merged.bandwidth[u] = std::max(sp.merged.bandwidth[u],
                                        p.bandwidth[u]);
    }
  }
  // Each constituent is normalized, so the pointwise max already is; this
  // is a cheap idempotent guard.
  sp.merged.Normalize(topology);
  return sp;
}

SuperplanResult SuperplanExecutor::Execute(const Superplan& superplan,
                                           const std::vector<double>& truth,
                                           net::NetworkSimulator* sim,
                                           bool include_trigger,
                                           TransportGuard* guard) {
  PROSPECTOR_SPAN("exec.superplan");
  const net::Topology& topo = sim->topology();
  const int n = topo.num_nodes();
  const int num_queries = superplan.num_queries();
  const net::EnergyModel& em = sim->energy_model();
  [[maybe_unused]] const double ledger_before_mj =
      sim->stats().total_energy_mj;

  SuperplanResult out;
  out.per_query.resize(num_queries);
  out.attributed_mj.assign(num_queries, 0.0);
  // Attribution accumulates in per-phase pools mirroring the audited
  // accumulators (trigger_energy_mj / collection_energy_mj), so a query
  // that rides alone sums the identical terms in the identical order and
  // its share equals the audited total bit-for-bit.
  std::vector<double> trigger_attr(num_queries, 0.0);
  std::vector<double> collect_attr(num_queries, 0.0);
  for (ExecutionResult& r : out.per_query) InitLinkEvidence(n, &r);
  out.edge_expected.assign(n, 0);
  out.edge_delivered.assign(n, 0);

  // One trigger wave serves everyone: broadcast where the *merged* plan
  // has a used child edge (same skip-dead semantics as ChargeTriggerCost),
  // splitting each broadcast among the queries triggered below it.
  if (include_trigger) {
    for (int u : topo.PreOrder()) {
      if (!sim->node_alive(u)) continue;
      bool merged_uses = false;
      for (int c : topo.children(u)) {
        if (superplan.merged.UsesEdge(c)) {
          merged_uses = true;
          break;
        }
      }
      if (!merged_uses) continue;
      const double cost = sim->Broadcast(u);
      out.trigger_energy_mj += cost;
      std::vector<int> sharers;
      for (int q = 0; q < num_queries; ++q) {
        for (int c : topo.children(u)) {
          if (superplan.plans[q].UsesEdge(c)) {
            sharers.push_back(q);
            break;
          }
        }
      }
      for (int q : sharers) {
        trigger_attr[q] += cost / static_cast<double>(sharers.size());
      }
    }
  }

  // Collection: every query's plan runs as a logical flow (its own
  // inbox/outbox per node, CollectionExecutor semantics), while each edge
  // carries the by-node-id union of the outboxes in one message.
  std::vector<std::vector<std::vector<Reading>>> inbox(
      num_queries, std::vector<std::vector<Reading>>(n));
  std::vector<char> seen(n, 0);
  double collection = 0.0;
  for (int u : topo.PostOrder()) {
    if (u == topo.root()) continue;

    if (guard != nullptr) {
      // Deferred union messages from edge u landing this epoch. Fencing
      // refuses them inside DrainArrivals; the naive protocol folds each
      // parked flow into its query's inbox at the parent, matched by
      // stable query id (queries retired since the send are dropped).
      for (DelayedMessage& m :
           guard->DrainArrivals(GuardChannel::kSuperplan, u)) {
        for (size_t f = 0; f < m.flows.size(); ++f) {
          for (int q = 0; q < num_queries; ++q) {
            if (superplan.query_ids[q] != m.flow_ids[f]) continue;
            std::vector<Reading>& up = inbox[q][topo.parent(u)];
            up.insert(up.end(), m.flows[f].begin(), m.flows[f].end());
            break;
          }
        }
      }
    }

    if (!sim->node_alive(u)) {
      // A dead node acquires nothing and forwards nothing; whatever any
      // query's flow had delivered to it is lost with it.
      int union_lost = 0;
      std::vector<int> lost_nodes;
      for (int q = 0; q < num_queries; ++q) {
        const QueryPlan& p = superplan.plans[q];
        ExecutionResult& r = out.per_query[q];
        std::vector<Reading>& mine = inbox[q][u];
        const bool originates = PlanAcquiresAt(p, u);
        r.edge_expected[u] = originates || !mine.empty();
        r.values_lost += static_cast<int>(mine.size());
        if (!mine.empty()) r.degraded = true;
        if (r.edge_expected[u]) out.edge_expected[u] = 1;
        for (const Reading& rd : mine) {
          if (!seen[rd.node]) {
            seen[rd.node] = 1;
            lost_nodes.push_back(rd.node);
            ++union_lost;
          }
        }
      }
      for (int v : lost_nodes) seen[v] = 0;
      out.values_lost += union_lost;
      if (union_lost > 0) out.degraded = true;
      continue;
    }

    // Acquisition: the node measures once however many queries ask.
    std::vector<int> acquirers;
    for (int q = 0; q < num_queries; ++q) {
      if (PlanAcquiresAt(superplan.plans[q], u)) acquirers.push_back(q);
    }
    if (!acquirers.empty()) {
      const double cost = sim->ChargeAcquisition(u);
      collection += cost;
      for (int q : acquirers) {
        collect_attr[q] += cost / static_cast<double>(acquirers.size());
      }
    }

    // Per-query outboxes under each query's own filtering rule.
    std::vector<std::vector<Reading>> outbox(num_queries);
    for (int q = 0; q < num_queries; ++q) {
      const QueryPlan& p = superplan.plans[q];
      std::vector<Reading>& mine = inbox[q][u];
      if (p.kind == PlanKind::kBandwidth) {
        if (p.bandwidth[u] <= 0) continue;
        mine.push_back({u, truth[u]});
        SortReadings(&mine);
        if (static_cast<int>(mine.size()) > p.bandwidth[u]) {
          mine.resize(p.bandwidth[u]);
        }
        outbox[q] = std::move(mine);
      } else {
        if (u < static_cast<int>(p.chosen.size()) && p.chosen[u]) {
          mine.push_back({u, truth[u]});
        }
        if (mine.empty()) continue;
        outbox[q] = std::move(mine);
      }
    }

    // Union transmission: one message carries each wanted reading once.
    std::vector<int> senders;
    std::vector<int> multiplicity(n, 0);
    int union_values = 0;
    int total_slots = 0;
    for (int q = 0; q < num_queries; ++q) {
      if (outbox[q].empty()) continue;
      senders.push_back(q);
      total_slots += static_cast<int>(outbox[q].size());
      for (const Reading& rd : outbox[q]) {
        if (multiplicity[rd.node] == 0) ++union_values;
        ++multiplicity[rd.node];
      }
    }
    if (senders.empty()) continue;

    out.edge_expected[u] = 1;
    for (int q : senders) out.per_query[q].edge_expected[u] = 1;
    out.shared_values += total_slots - union_values;
    if (senders.size() > 1) ++out.shared_messages;

    const FencedHeader header =
        guard != nullptr ? guard->Stamp(u) : FencedHeader{};
    const net::DeliveryResult sent =
        sim->TryUnicast(u, union_values,
                        guard != nullptr ? guard->header_bytes() : 0);
    collection += sent.energy_mj;
    int copies = sent.arrived_now() ? 1 : 0;
    const bool deferred =
        sent.delivered && !sent.corrupted && sent.delayed_until_epoch >= 0;
    if (guard != nullptr) {
      if (deferred) {
        DelayedMessage parked;
        parked.channel = GuardChannel::kSuperplan;
        parked.child_edge = u;
        parked.arrival_epoch = sent.delayed_until_epoch;
        parked.header = header;
        for (int q : senders) {
          parked.flow_ids.push_back(superplan.query_ids[q]);
          parked.flows.push_back(outbox[q]);
        }
        guard->Defer(std::move(parked));
        copies = 0;
      } else {
        copies = guard->AdmitCopies(sent, header, u);
      }
    }

    // Attribution: split the per-message overhead equally among the
    // queries aboard, and the value-proportional remainder by charging
    // each union value once, divided among the queries that wanted it.
    // Re-route / retry inflation scales both parts proportionally. A
    // sole sender owns the message outright (exactly, not just to
    // rounding — the single-query engine's ledger must equal the audited
    // total bit-for-bit).
    if (senders.size() == 1) {
      collect_attr[senders[0]] += sent.energy_mj;
    } else {
      const double frac_message =
          em.per_message_mj / em.MessageCost(union_values);
      const double message_pool = sent.energy_mj * frac_message;
      const double value_pool = sent.energy_mj - message_pool;
      for (int q : senders) {
        collect_attr[q] += message_pool / static_cast<double>(senders.size());
        if (value_pool > 0.0) {
          double weight = 0.0;
          for (const Reading& rd : outbox[q]) {
            weight += 1.0 / static_cast<double>(multiplicity[rd.node]);
          }
          collect_attr[q] +=
              value_pool * weight / static_cast<double>(union_values);
        }
      }
    }

    if (copies > 0) {
      out.edge_delivered[u] = 1;
      const int parent = topo.parent(u);
      for (int q : senders) {
        out.per_query[q].edge_delivered[u] = 1;
        std::vector<Reading>& up = inbox[q][parent];
        // copies > 1 only in naive mode: every query aboard receives its
        // flow that many times and the duplicates ride into the demux.
        for (int rep = 0; rep < copies; ++rep) {
          up.insert(up.end(), outbox[q].begin(), outbox[q].end());
        }
      }
    } else {
      if (deferred) {
        ++out.messages_deferred;
      } else {
        ++out.messages_dropped;
      }
      out.values_lost += union_values;
      out.degraded = true;
      for (int q : senders) {
        ExecutionResult& r = out.per_query[q];
        if (deferred) {
          ++r.messages_deferred;
        } else {
          ++r.messages_dropped;
        }
        r.values_lost += static_cast<int>(outbox[q].size());
        r.degraded = true;
      }
    }
  }
  out.collection_energy_mj = collection;
  for (int q = 0; q < num_queries; ++q) {
    out.attributed_mj[q] = trigger_attr[q] + collect_attr[q];
  }

  out.subtree_live =
      ComputeSubtreeLiveness(topo, out.edge_expected, out.edge_delivered);
  for (ExecutionResult& r : out.per_query) {
    FinalizeSubtreeLiveness(topo, &r);
  }

  // Root demux: each query keeps exactly its own flow, sorted and trimmed
  // to its own k.
  for (int q = 0; q < num_queries; ++q) {
    ExecutionResult& r = out.per_query[q];
    r.arrived = std::move(inbox[q][topo.root()]);
    r.arrived.push_back({topo.root(), truth[topo.root()]});
    SortReadings(&r.arrived);
    r.answer = r.arrived;
    if (static_cast<int>(r.answer.size()) > superplan.plans[q].k) {
      r.answer.resize(superplan.plans[q].k);
    }
  }

  PROSPECTOR_AUDIT_ENERGY("executor.superplan", out.total_energy_mj(),
                          sim->stats().total_energy_mj - ledger_before_mj);
  PROSPECTOR_COUNTER_ADD("exec.superplan.runs", 1);
  PROSPECTOR_COUNTER_ADD("exec.superplan.shared_messages",
                         out.shared_messages);
  PROSPECTOR_COUNTER_ADD("exec.superplan.shared_values",
                         static_cast<int>(out.shared_values));
  PROSPECTOR_COUNTER_ADD("exec.superplan.values_lost", out.values_lost);
  if (out.degraded) {
    PROSPECTOR_FLIGHT(kNote, "exec.superplan.degraded", -1, out.values_lost,
                      out.shared_messages);
  }
  return out;
}

Subplan MergedSubplanFor(const Superplan& superplan,
                         const net::Topology& topology, int node) {
  Subplan sp = SubplanFor(superplan.merged, topology, node);
  for (int q = 0; q < superplan.num_queries(); ++q) {
    const QueryPlan& p = superplan.plans[q];
    if (node != topology.root() && p.bandwidth[node] <= 0) continue;
    SubplanQueryEntry entry;
    entry.query_id = superplan.query_ids[q];
    entry.k = p.k;
    entry.bandwidth = node == topology.root() ? 0 : p.bandwidth[node];
    sp.query_entries.push_back(entry);
  }
  return sp;
}

}  // namespace core
}  // namespace prospector
