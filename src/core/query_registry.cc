#include "src/core/query_registry.h"

#include <algorithm>

#include "src/core/greedy_planner.h"
#include "src/core/lp_filter_planner.h"

namespace prospector {
namespace core {
namespace {

std::unique_ptr<Planner> MakePlanner(const QuerySpec& spec) {
  switch (spec.planner) {
    case PlannerChoice::kGreedy:
      return std::make_unique<GreedyPlanner>();
    case PlannerChoice::kLpNoFilter:
      return std::make_unique<LpNoFilterPlanner>(spec.lp);
    case PlannerChoice::kLpFilter:
      return std::make_unique<LpFilterPlanner>(spec.lp);
  }
  return std::make_unique<LpFilterPlanner>(spec.lp);
}

size_t RoundUpPowerOfTwo(int n) {
  size_t p = 1;
  while (static_cast<int>(p) < n) p <<= 1;
  return p;
}

}  // namespace

QueryState::QueryState(int id_in, const QuerySpec& spec_in, int num_nodes,
                       size_t sample_window)
    : id(id_in),
      spec(spec_in),
      samples(sampling::SampleSet::ForTopK(num_nodes, spec_in.k,
                                           sample_window)),
      planner(MakePlanner(spec_in)),
      manager(planner.get(),
              PlanRequest{spec_in.k, spec_in.energy_budget_mj},
              spec_in.manager),
      health(spec_in.slo) {}

QueryRegistry::QueryRegistry(int shards) {
  const size_t n = RoundUpPowerOfTwo(std::max(shards, 1));
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  mask_ = n - 1;
}

void QueryRegistry::RaiseNextId(int floor) {
  int cur = next_id_.load(std::memory_order_relaxed);
  while (cur < floor &&
         !next_id_.compare_exchange_weak(cur, floor,
                                         std::memory_order_acq_rel)) {
  }
}

int QueryRegistry::Add(const QuerySpec& spec, int num_nodes,
                       size_t sample_window) {
  const int id = next_id_.fetch_add(1, std::memory_order_acq_rel);
  Shard& shard = ShardFor(id);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.used.insert(id);
    shard.live.emplace(
        id, std::make_unique<QueryState>(id, spec, num_nodes, sample_window));
  }
  count_.fetch_add(1, std::memory_order_acq_rel);
  order_dirty_.store(true, std::memory_order_release);
  return id;
}

Result<int> QueryRegistry::AddWithId(int id, const QuerySpec& spec,
                                     int num_nodes, size_t sample_window) {
  if (id < 0) {
    return Status::InvalidArgument("query ids must be non-negative");
  }
  Shard& shard = ShardFor(id);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.used.insert(id).second) {
      return Status::FailedPrecondition(
          "query id " + std::to_string(id) +
          " was already admitted; ids are never reused");
    }
    shard.live.emplace(
        id, std::make_unique<QueryState>(id, spec, num_nodes, sample_window));
  }
  count_.fetch_add(1, std::memory_order_acq_rel);
  RaiseNextId(id + 1);
  order_dirty_.store(true, std::memory_order_release);
  return id;
}

bool QueryRegistry::Remove(int id) {
  if (id < 0) return false;
  Shard& shard = ShardFor(id);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.live.erase(id) == 0) return false;
  }
  count_.fetch_sub(1, std::memory_order_acq_rel);
  order_dirty_.store(true, std::memory_order_release);
  return true;
}

QueryState* QueryRegistry::Find(int id) {
  if (id < 0) return nullptr;
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.live.find(id);
  return it == shard.live.end() ? nullptr : it->second.get();
}

const QueryState* QueryRegistry::Find(int id) const {
  return const_cast<QueryRegistry*>(this)->Find(id);
}

std::vector<int> QueryRegistry::ids() const {
  std::vector<int> out;
  out.reserve(static_cast<size_t>(size()));
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [id, q] : shard->live) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

const std::vector<QueryState*>& QueryRegistry::ordered() const {
  if (order_dirty_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(order_mu_);
    order_.clear();
    order_.reserve(static_cast<size_t>(size()));
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      for (const auto& [id, q] : shard->live) order_.push_back(q.get());
    }
    std::sort(order_.begin(), order_.end(),
              [](const QueryState* a, const QueryState* b) {
                return a->id < b->id;
              });
    order_dirty_.store(false, std::memory_order_release);
  }
  return order_;
}

}  // namespace core
}  // namespace prospector
