#ifndef PROSPECTOR_CORE_PLAN_EVAL_H_
#define PROSPECTOR_CORE_PLAN_EVAL_H_

#include "src/core/executor.h"
#include "src/core/hit_matrix.h"
#include "src/core/plan.h"
#include "src/net/topology.h"
#include "src/sampling/sample_set.h"
#include "src/util/thread_pool.h"

namespace prospector {
namespace core {

/// Number of contributing values ("1-entries of Q") the plan would deliver
/// to the root across all samples, assuming ideal local filtering.
///
/// Within any subtree, global top-k values are exactly the locally largest
/// values (anything larger than a top-k member is itself a top-k member),
/// so a node passing its top-b values forwards contributing values first.
/// The count therefore satisfies the bottom-up recurrence
///   f(u) = min(bandwidth[u], [u contributes] + sum_children f(c)),
/// and the root collects sum_children f(c) plus its own contribution.
/// This is the integral counterpart of the LP+LF objective, used for
/// rounding repair and for tests.
///
/// Samples are independent, so when `pool` is non-null the per-sample
/// evaluations run on it; the total is accumulated in sample order either
/// way, so the result is identical for any thread count (and for
/// `pool == nullptr`).
///
/// This overload packs the window into a throwaway HitMatrix and scores
/// through it; callers holding a synced matrix (e.g. via GetHitMatrix)
/// should pass it directly to skip the repack.
int SampleHits(const QueryPlan& plan, const net::Topology& topology,
               const sampling::SampleSet& samples,
               util::ThreadPool* pool = nullptr);

/// SampleHits against a packed hit matrix (see HitMatrix): identical
/// integers to the SampleSet overload, computed from the bit-packed rows —
/// one popcount per row word for node-selection plans, and a sparse
/// recurrence touching only the ancestors of set bits for bandwidth plans.
int SampleHits(const QueryPlan& plan, const net::Topology& topology,
               const HitMatrix& hits, util::ThreadPool* pool = nullptr);

/// SampleHits for one sample only.
int SampleHitsForSample(const QueryPlan& plan, const net::Topology& topology,
                        const sampling::SampleSet& samples, int j);

/// SampleHitsForSample against a packed hit matrix.
int SampleHitsForSample(const QueryPlan& plan, const net::Topology& topology,
                        const HitMatrix& hits, int j);

/// PathEdges(i) for every node, materialized once (entry root() is empty).
/// The planners walk root paths over and over while building constraint
/// rows and scoring candidates; caching removes the repeated allocation,
/// and the per-node computations are independent, so they run on `pool`
/// when one is supplied.
std::vector<std::vector<int>> ComputePathCache(const net::Topology& topology,
                                               util::ThreadPool* pool = nullptr);

/// Answer quality of one (possibly partial) execution against the ground
/// truth. Recall alone hides degradation when loss shrinks the answer;
/// together with precision it tells partial-but-right apart from wrong.
struct AccuracyMetrics {
  /// |answer ∩ true top-k| / k — the paper's Section 5 metric.
  double recall = 0.0;
  /// |answer ∩ true top-k| / |answer|; an empty answer claims nothing and
  /// scores 1.0 (vacuously precise, recall 0 tells the story).
  double precision = 1.0;
  int answered = 0;  ///< |answer|
};

/// Scores `result.answer` against the true top-k of `truth`. Under lossy
/// transport the executor may return fewer than k readings or readings
/// displaced by lost subtrees; both surface here.
AccuracyMetrics TopKAccuracy(const ExecutionResult& result,
                             const std::vector<double>& truth, int k);

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_PLAN_EVAL_H_
