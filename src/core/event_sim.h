#ifndef PROSPECTOR_CORE_EVENT_SIM_H_
#define PROSPECTOR_CORE_EVENT_SIM_H_

#include <vector>

#include "src/core/latency.h"
#include "src/core/plan.h"
#include "src/net/failure.h"
#include "src/net/topology.h"
#include "src/util/rng.h"

namespace prospector {
namespace core {

/// Outcome of a discrete-event run of one collection phase.
struct EventSimResult {
  /// Time until the root has received every message, in seconds.
  double completion_s = 0.0;
  /// Per-node radio airtime (sending + receiving), seconds.
  std::vector<double> node_airtime_s;
  /// Per-node time spent ready-to-send but blocked on a busy radio.
  std::vector<double> node_blocked_s;
  int transmissions = 0;
  int retransmissions = 0;
};

/// Discrete-event simulation of a collection phase under the generic MAC
/// model: half-duplex radios, one transmission occupies both endpoints for
/// its full duration, transmissions are scheduled greedily
/// (earliest-feasible-start first). Without failures the completion time
/// provably matches EstimateCollectionLatency's analytic recurrence — a
/// cross-check both implementations are tested against. With a
/// FailureModel, each transmission independently fails and is retried
/// (geometric retransmission count), stretching airtime and latency.
EventSimResult SimulateCollectionPhase(const QueryPlan& plan,
                                       const net::Topology& topology,
                                       const net::EnergyModel& energy,
                                       const RadioTiming& timing,
                                       const net::FailureModel& failures = {},
                                       Rng* rng = nullptr);

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_EVENT_SIM_H_
