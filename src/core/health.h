#ifndef PROSPECTOR_CORE_HEALTH_H_
#define PROSPECTOR_CORE_HEALTH_H_

#include <deque>
#include <string>
#include <vector>

namespace prospector {
namespace core {

/// Per-query service-level objectives. A threshold of -1 disarms that
/// check. Only signals that are both armed AND present in an epoch are
/// scored, so e.g. explore/audit epochs (no per-query answer, hence no
/// realized recall) neither breach nor clear a recall SLO.
struct HealthSlo {
  int window = 8;         ///< rolling-window length, in scored epochs
  int breach_epochs = 2;  ///< consecutive breaching epochs => unhealthy
  double min_recall = 0.7;            ///< realized top-k recall floor
  double max_energy_mj = -1.0;        ///< per-epoch attributed energy cap
  double max_replan_latency_ms = -1.0;  ///< wall-clock: armed => dumps are
                                        ///< no longer replay-deterministic
  double max_guard_rejects = -1.0;    ///< per-epoch guard rejection cap
  double max_recall_residual = -1.0;  ///< predicted - realized recall cap
};

enum class HealthStatus {
  kUnknown = 0,  ///< no scored epoch yet (bootstrap / just admitted)
  kHealthy,
  kDegraded,   ///< breaching, but for fewer than breach_epochs epochs
  kUnhealthy,  ///< >= breach_epochs consecutive breaching epochs
};

const char* HealthStatusName(HealthStatus status);

/// One query's current health: status plus the rolling-window aggregates
/// that justify it. Surfaced by QueryEngine::HealthReport().
struct QueryHealth {
  int query_id = -1;
  HealthStatus status = HealthStatus::kUnknown;
  int scored_epochs = 0;        ///< epochs that carried an armed signal
  int consecutive_breaches = 0;
  double last_recall = -1.0;    ///< most recent realized recall (-1 = none)
  double mean_recall = -1.0;    ///< over the window (-1 = no signal yet)
  double mean_energy_mj = 0.0;  ///< attributed energy per epoch, windowed
  double mean_replan_latency_ms = 0.0;  ///< over replans in the window
  double mean_guard_rejects = 0.0;      ///< engine-wide rejections/epoch
  double predicted_recall = -1.0;  ///< planner's sample-estimated recall
  double recall_residual = 0.0;    ///< predicted - realized (last epoch)
  std::string breached;  ///< comma-joined SLO names breaching now ("" = none)
};

/// Rolling-window SLO scorer for one query. Deterministic: status is a
/// pure function of the observed signal sequence, so two identical runs
/// transition at identical epochs.
class QueryHealthTracker {
 public:
  QueryHealthTracker() = default;
  explicit QueryHealthTracker(const HealthSlo& slo) : slo_(slo) {}

  /// Signals harvested from one engine tick. Negative recall /
  /// replan latency mean "no signal this epoch".
  struct EpochSignals {
    double recall = -1.0;
    double energy_mj = 0.0;
    double replan_latency_ms = -1.0;
    double guard_rejects = 0.0;
    double predicted_recall = -1.0;
  };

  void Observe(const EpochSignals& signals);

  HealthStatus status() const { return health_.status; }
  /// Current health (query_id is left for the engine to fill in).
  const QueryHealth& health() const { return health_; }
  const HealthSlo& slo() const { return slo_; }

 private:
  void PushWindow(std::deque<double>* window, double v);

  HealthSlo slo_;
  QueryHealth health_;
  std::deque<double> recall_window_;
  std::deque<double> energy_window_;
  std::deque<double> latency_window_;
  std::deque<double> guard_window_;
};

/// Renders a health report as OpenMetrics families (no "# EOF"; append to
/// an obs::ToOpenMetricsBody() exposition). Status encodes as an integer
/// gauge: 0 unknown, 1 healthy, 2 degraded, 3 unhealthy.
std::string HealthOpenMetricsBody(const std::vector<QueryHealth>& report);

/// Compact deterministic JSON array of per-query health objects.
std::string HealthReportJson(const std::vector<QueryHealth>& report);

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_HEALTH_H_
