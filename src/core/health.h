#ifndef PROSPECTOR_CORE_HEALTH_H_
#define PROSPECTOR_CORE_HEALTH_H_

#include <deque>
#include <string>
#include <vector>

namespace prospector {
namespace core {

/// Per-query service-level objectives. A threshold of -1 disarms that
/// check. Only signals that are both armed AND present in an epoch are
/// scored, so e.g. explore/audit epochs (no per-query answer, hence no
/// realized recall) neither breach nor clear a recall SLO.
struct HealthSlo {
  int window = 8;         ///< rolling-window length, in scored epochs
  int breach_epochs = 2;  ///< consecutive breaching epochs => unhealthy
  double min_recall = 0.7;            ///< realized top-k recall floor
  double max_energy_mj = -1.0;        ///< per-epoch attributed energy cap
  double max_replan_latency_ms = -1.0;  ///< wall-clock: armed => dumps are
                                        ///< no longer replay-deterministic
  double max_guard_rejects = -1.0;    ///< per-epoch guard rejection cap
  double max_recall_residual = -1.0;  ///< predicted - realized recall cap
};

enum class HealthStatus {
  kUnknown = 0,  ///< no scored epoch yet (bootstrap / just admitted)
  kHealthy,
  kDegraded,   ///< breaching, but for fewer than breach_epochs epochs
  kUnhealthy,  ///< >= breach_epochs consecutive breaching epochs
};

const char* HealthStatusName(HealthStatus status);

/// One query's current health: status plus the rolling-window aggregates
/// that justify it. Surfaced by QueryEngine::HealthReport().
struct QueryHealth {
  int query_id = -1;
  /// Fleet tags (see DESIGN.md, "Fleet service"): which deployment the
  /// query runs on and which tenant admitted it. -1 = untagged
  /// (standalone engine / directly-registered query).
  int deployment_id = -1;
  int tenant_id = -1;
  HealthStatus status = HealthStatus::kUnknown;
  int scored_epochs = 0;        ///< epochs that carried an armed signal
  int consecutive_breaches = 0;
  double last_recall = -1.0;    ///< most recent realized recall (-1 = none)
  double mean_recall = -1.0;    ///< over the window (-1 = no signal yet)
  double mean_energy_mj = 0.0;  ///< attributed energy per epoch, windowed
  double mean_replan_latency_ms = 0.0;  ///< over replans in the window
  double mean_guard_rejects = 0.0;      ///< engine-wide rejections/epoch
  double predicted_recall = -1.0;  ///< planner's sample-estimated recall
  double recall_residual = 0.0;    ///< predicted - realized (last epoch)
  std::string breached;  ///< comma-joined SLO names breaching now ("" = none)
};

/// Rolling-window SLO scorer for one query. Deterministic: status is a
/// pure function of the observed signal sequence, so two identical runs
/// transition at identical epochs.
class QueryHealthTracker {
 public:
  QueryHealthTracker() = default;
  explicit QueryHealthTracker(const HealthSlo& slo) : slo_(slo) {}

  /// Signals harvested from one engine tick. Negative recall /
  /// replan latency mean "no signal this epoch".
  struct EpochSignals {
    double recall = -1.0;
    double energy_mj = 0.0;
    double replan_latency_ms = -1.0;
    double guard_rejects = 0.0;
    double predicted_recall = -1.0;
  };

  void Observe(const EpochSignals& signals);

  HealthStatus status() const { return health_.status; }
  /// Current health (query_id is left for the engine to fill in).
  const QueryHealth& health() const { return health_; }
  const HealthSlo& slo() const { return slo_; }

 private:
  void PushWindow(std::deque<double>* window, double v);

  HealthSlo slo_;
  QueryHealth health_;
  std::deque<double> recall_window_;
  std::deque<double> energy_window_;
  std::deque<double> latency_window_;
  std::deque<double> guard_window_;
};

/// One aggregation bucket of a fleet health report — all the queries of
/// one tenant, or all the queries on one deployment. A single scrape of
/// these rollups covers the whole fleet without per-query cardinality.
struct HealthRollup {
  int id = -1;  ///< tenant id or deployment id
  int queries = 0;
  /// Query counts by status.
  int unknown = 0;
  int healthy = 0;
  int degraded = 0;
  int unhealthy = 0;
  /// Mean of the member queries' windowed mean recalls, over queries that
  /// have a recall signal (-1 when none do).
  double mean_recall = -1.0;
  /// Sum of the member queries' windowed mean energy per epoch, mJ.
  double energy_mj = 0.0;
  int max_consecutive_breaches = 0;
};

/// Aggregates a (fleet) health report by tenant / by deployment, ascending
/// id. Untagged queries (tag -1) aggregate under id -1.
std::vector<HealthRollup> RollupByTenant(
    const std::vector<QueryHealth>& report);
std::vector<HealthRollup> RollupByDeployment(
    const std::vector<QueryHealth>& report);

/// Renders a health report as OpenMetrics families (no "# EOF"; append to
/// an obs::ToOpenMetricsBody() exposition). Status encodes as an integer
/// gauge: 0 unknown, 1 healthy, 2 degraded, 3 unhealthy. Per-query series
/// carry deployment/tenant labels when tagged (>= 0), so fleet-wide
/// expositions stay filterable by either dimension.
std::string HealthOpenMetricsBody(const std::vector<QueryHealth>& report);

/// OpenMetrics families for one rollup dimension (`label` is "tenant" or
/// "deployment"): prospector_<label>_queries / _unhealthy / _degraded /
/// _recall / _energy_mj series keyed by the rollup id.
std::string HealthRollupOpenMetricsBody(const char* label,
                                        const std::vector<HealthRollup>& r);

/// Compact deterministic JSON array of per-query health objects.
std::string HealthReportJson(const std::vector<QueryHealth>& report);

/// One fleet-wide scrape: {"queries": HealthReportJson, "tenants": [...],
/// "deployments": [...]} with per-bucket rollup objects.
std::string FleetHealthJson(const std::vector<QueryHealth>& report);

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_HEALTH_H_
