#ifndef PROSPECTOR_CORE_GREEDY_PLANNER_H_
#define PROSPECTOR_CORE_GREEDY_PLANNER_H_

#include <memory>

#include "src/core/planner.h"

namespace prospector {
namespace core {

struct GreedyPlannerOptions {
  /// Worker threads for candidate preparation; 1 = the serial seed path.
  /// Any value yields bit-identical plans (the greedy selection itself is
  /// inherently sequential — parallelism only accelerates the per-node
  /// path/cost precomputation).
  int threads = 1;
};

/// PROSPECTOR Greedy (Section 3): repeatedly picks the not-yet-chosen node
/// that contributed the most top-k values across the samples (the largest
/// column sum of the Boolean matrix Q) and adds it to the plan, as long as
/// the plan's expected cost stays within the energy budget.
///
/// The selection itself is topology-blind (that is the point of this
/// baseline), but the cost accounting is real: adding a node pays the
/// per-value cost on every edge of its path and the per-message cost on
/// path edges not already used by the plan.
class GreedyPlanner : public Planner {
 public:
  GreedyPlanner() = default;
  explicit GreedyPlanner(GreedyPlannerOptions options) : options_(options) {}

  Result<QueryPlan> Plan(const PlannerContext& ctx,
                         const sampling::SampleSet& samples,
                         const PlanRequest& request) override;
  std::string name() const override { return "ProspectorGreedy"; }

 private:
  GreedyPlannerOptions options_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_GREEDY_PLANNER_H_
