#include "src/core/event_sim.h"

#include <algorithm>
#include <limits>

namespace prospector {
namespace core {

EventSimResult SimulateCollectionPhase(const QueryPlan& plan,
                                       const net::Topology& topology,
                                       const net::EnergyModel& energy,
                                       const RadioTiming& timing,
                                       const net::FailureModel& failures,
                                       Rng* rng) {
  const int n = topology.num_nodes();
  EventSimResult result;
  result.node_airtime_s.assign(n, 0.0);
  result.node_blocked_s.assign(n, 0.0);

  // Pending message count per node: how many child messages it still
  // expects before it may transmit its own.
  std::vector<int> awaiting(n, 0);
  std::vector<char> sends(n, 0);
  for (int u = 1; u < n; ++u) sends[u] = plan.bandwidth[u] > 0 ? 1 : 0;
  for (int u = 1; u < n; ++u) {
    if (sends[u]) ++awaiting[topology.parent(u)];
  }

  std::vector<double> ready(n, std::numeric_limits<double>::infinity());
  std::vector<double> radio_free(n, 0.0);
  for (int u = 0; u < n; ++u) {
    if (awaiting[u] == 0) ready[u] = 0.0;  // leaves (w.r.t. the plan)
  }

  std::vector<char> done(n, 1);
  int remaining = 0;
  for (int u = 1; u < n; ++u) {
    if (sends[u]) {
      done[u] = 0;
      ++remaining;
    }
  }

  // Greedy list scheduling: repeatedly dispatch the transmittable message
  // with the earliest feasible start (ties: lower node id).
  while (remaining > 0) {
    int pick = -1;
    double pick_start = std::numeric_limits<double>::infinity();
    for (int u = 1; u < n; ++u) {
      if (done[u] || !std::isfinite(ready[u])) continue;
      const int p = topology.parent(u);
      const double start =
          std::max({ready[u], radio_free[u], radio_free[p]});
      if (start < pick_start || (start == pick_start && u < pick)) {
        pick_start = start;
        pick = u;
      }
    }
    if (pick < 0) break;  // defensive: nothing dispatchable

    const int parent = topology.parent(pick);
    double tx = timing.TransmissionSeconds(plan.bandwidth[pick] *
                                           energy.bytes_per_value);
    ++result.transmissions;
    if (failures.enabled() && rng != nullptr) {
      // Geometric retransmission: retry until the link succeeds.
      const double p_fail = failures.ProbabilityFor(pick);
      while (rng->Bernoulli(p_fail)) {
        tx += timing.TransmissionSeconds(plan.bandwidth[pick] *
                                         energy.bytes_per_value);
        ++result.retransmissions;
      }
    }
    const double finish = pick_start + tx;
    result.node_blocked_s[pick] += pick_start - ready[pick];
    result.node_airtime_s[pick] += tx;
    result.node_airtime_s[parent] += tx;
    radio_free[pick] = finish;
    radio_free[parent] = finish;
    done[pick] = 1;
    --remaining;
    if (--awaiting[parent] == 0) {
      ready[parent] = std::max(finish, radio_free[parent]);
    }
    result.completion_s = std::max(result.completion_s, finish);
  }
  return result;
}

}  // namespace core
}  // namespace prospector
