#ifndef PROSPECTOR_CORE_PLAN_H_
#define PROSPECTOR_CORE_PLAN_H_

#include <string>
#include <vector>

#include "src/net/simulator.h"
#include "src/net/topology.h"

namespace prospector {
namespace core {

/// How the plan's values are selected during the collection phase.
enum class PlanKind {
  /// A bandwidth assignment (Section 2): every node forwards the top
  /// bandwidth[i] readings of its subtree — local filtering happens
  /// wherever a node receives more values than it may send.
  kBandwidth,
  /// A fixed node set (PROSPECTOR Greedy / LP-LF): the chosen nodes'
  /// readings travel to the root unconditionally; no run-time filtering.
  kNodeSelection,
};

/// An executable top-k query plan.
///
/// For both kinds, `bandwidth[i]` is the number of values edge i (the link
/// from node i to its parent) carries; for node-selection plans it is
/// derived from `chosen` and used only for costing. The root's entry (it
/// owns no edge) is unused and always 0; Normalize() enforces this for the
/// actual root id.
struct QueryPlan {
  PlanKind kind = PlanKind::kBandwidth;
  int k = 0;
  bool proof_carrying = false;
  std::vector<int> bandwidth;
  std::vector<char> chosen;  ///< kNodeSelection only; indexed by node id

  bool UsesEdge(int child_edge) const { return bandwidth[child_edge] > 0; }

  /// Creates a bandwidth plan; `bandwidths` indexed by child-edge id.
  /// Zeroes entry 0 as a convenience for the (standard) root-at-0 layout;
  /// plans for topologies rooted elsewhere must be Normalize()d.
  static QueryPlan Bandwidth(int k, std::vector<int> bandwidths,
                             bool proof_carrying = false);

  /// Creates a node-selection plan from the chosen node mask, deriving the
  /// per-edge value counts (the root's own reading needs no edge).
  static QueryPlan NodeSelection(int k, std::vector<char> chosen_mask,
                                 const net::Topology& topology);

  /// Clamps bandwidths to subtree sizes and zeroes any bandwidth that is
  /// unreachable because an ancestor edge carries nothing (values could
  /// never travel past it). Returns *this for chaining.
  QueryPlan& Normalize(const net::Topology& topology);

  /// Total number of participating (visited) nodes: those whose own
  /// reading can reach the root. The root always participates.
  int CountVisitedNodes(const net::Topology& topology) const;

  std::string DebugString(const net::Topology& topology) const;
};

/// Expected energy of one collection phase under this plan: per used edge,
/// one message carrying bandwidth[e] values, inflated by the edge's
/// expected transient-failure re-route factor (Section 4.4).
double ExpectedCollectionCost(const QueryPlan& plan,
                              const net::NetworkSimulator& sim);

/// Expected energy of triggering one execution (Section 2, "subsequent
/// distribution phases"): an empty broadcast at every node that has at
/// least one used child edge.
double ExpectedTriggerCost(const QueryPlan& plan,
                           const net::NetworkSimulator& sim);

/// Charges the initial distribution phase to the simulator: each node
/// unicasts a subplan (a few bytes per child entry) to every child that
/// participates in the plan. Returns the energy spent.
double ChargeInstallCost(const QueryPlan& plan, net::NetworkSimulator* sim);

/// Charges a trigger wave (empty broadcasts down the used subtrees).
double ChargeTriggerCost(const QueryPlan& plan, net::NetworkSimulator* sim);

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_PLAN_H_
