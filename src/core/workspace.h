#ifndef PROSPECTOR_CORE_WORKSPACE_H_
#define PROSPECTOR_CORE_WORKSPACE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/core/hit_matrix.h"
#include "src/core/planner.h"
#include "src/lp/model.h"
#include "src/lp/simplex.h"
#include "src/net/topology.h"
#include "src/sampling/sample_set.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace prospector {
namespace core {

/// Tuning of the incremental planning caches.
struct WorkspaceOptions {
  /// Re-solve cached LPs hot: each entry retains the final simplex tableau
  /// of its last optimal solve and the next solve resumes from it with
  /// phase-2 pivots only (lp::SimplexSolver::SolveHot). Off = cached
  /// models are still reused but always solved cold, and no tableau is
  /// retained.
  bool warm_start = true;
  /// Always-on debug cross-check (the default): every warm-started solve
  /// is re-solved cold, the objectives are asserted equal
  /// (process-aborting diagnostic on mismatch), and the cold solution is
  /// returned — so workspace-on planning is bit-identical to
  /// workspace-off by construction. Disabling it ("trust mode") skips the
  /// verification re-solve for maximum speed; the objective is still the
  /// optimum, but a degenerate LP (e.g. LP+LF's zero-objective bandwidth
  /// variables) may land on an alternate optimal vertex and round to a
  /// different — equally good — plan. See DESIGN.md, "Incremental
  /// planning".
  bool cross_check = true;
  /// Rebuild a cached LP from scratch once its tombstoned (dead) sample
  /// variables exceed `max_dead_ratio` times the live ones. Dead blocks
  /// cost tableau width (their rows and columns stay in the model) on
  /// every solve, and hot-solve cost grows quadratically with width, so a
  /// lean tableau beats a rarely-rebuilt one: 0.25 keeps steady-state
  /// replans ~1.7x faster than cold on the fig-3 LP+LF workload where 1.0
  /// made them slower than cold.
  double max_dead_ratio = 0.25;
};

/// Cache-effectiveness counters (also mirrored into the global metrics
/// registry as workspace.* counters). Snapshot via
/// PlanningWorkspace::counters().
struct WorkspaceCounters {
  long long topo_hits = 0;    ///< path/ancestor/descendant cache hits
  long long topo_misses = 0;  ///< ... and rebuilds
  long long lp_hits = 0;      ///< cached LP reused (delta-patched)
  long long lp_misses = 0;    ///< cached LP rebuilt from scratch
  long long lp_patches = 0;   ///< individual patch ops (obj/rhs/blocks)
  long long warm_attempts = 0;   ///< solves started from a prior basis
  long long warm_successes = 0;  ///< ... that did not fall back to cold
};

/// Memo of SampleHits(plan, topology, samples) for one *fixed* plan:
/// valid while the (topology epoch, sample lineage, sample version)
/// triple is unchanged. PlanManager keeps one for the installed plan so
/// steady-state MaybeReplan calls stop rescoring an unchanged window.
struct SampleHitsCache {
  int hits = 0;
  uint64_t topo_epoch = 0;
  uint64_t set_id = 0;
  uint64_t set_version = 0;
  bool valid = false;

  bool Matches(const net::Topology& topo,
               const sampling::SampleSet& samples) const {
    return valid && topo_epoch == topo.epoch() && set_id == samples.id() &&
           set_version == samples.version();
  }
  void Store(int h, const net::Topology& topo,
             const sampling::SampleSet& samples) {
    hits = h;
    topo_epoch = topo.epoch();
    set_id = samples.id();
    set_version = samples.version();
    valid = true;
  }
  void Invalidate() { valid = false; }
};

/// Which planner family a cached LP belongs to (part of the lease key —
/// the model shapes are incompatible across planners).
enum class LpKind { kNoFilter = 0, kFilter = 1, kProof = 2 };

/// Variables a single sample contributed to a cached LP. When the window
/// slides the block is tombstoned (its variables' objective weights are
/// zeroed) rather than removed, so the constraint matrix keeps its shape
/// and the previous basis stays primal feasible — the next solve can
/// warm-start. Dead variables keep their bounds; they only appear on the
/// small side of <= rows whose large side is a shared (live) variable, so
/// every optimum can drive them to zero at no objective cost and the
/// optimal value equals a from-scratch rebuild's.
struct LpSampleBlock {
  uint64_t stamp = 0;  ///< SampleSet::sample_stamp of the owning sample
  bool live = true;
  std::vector<int> vars;  ///< every LP variable owned by this block
  /// LP+LF only: (node, y-variable) pairs in ones(j) order, consumed by
  /// the rounding step.
  std::vector<std::pair<int, int>> node_vars;
};

/// One cached LP: the model, the retained solver tableau of its last
/// optimal solve (for hot re-solves), the keys that decide staleness, and
/// the per-sample block ledger. The planners own the model semantics (what
/// x/z/b mean, how blocks are appended); the workspace owns storage,
/// leasing, and the hot/cold solve policy.
struct LpEntry {
  bool built = false;
  uint64_t topo_epoch = 0;
  uint64_t set_id = 0;
  uint64_t cost_fingerprint = 0;
  int k = 0;
  lp::Model model;
  lp::TableauState hot;
  std::vector<LpSampleBlock> blocks;
  int live_block_vars = 0;
  int dead_block_vars = 0;
  int budget_row = -1;
  /// Planner-specific variable maps, indexed by node/edge id (-1 = no
  /// variable). LP-LF: x (acquire) and z (edge use). LP+LF: z and b
  /// (bandwidth). Proof: b.
  std::vector<int> x, z, b;

  /// Wipes everything back to the unbuilt state (used before a rebuild).
  void Reset() { *this = LpEntry{}; }

  /// Slides the cached model's window: every live block whose stamp is not
  /// in `window_stamps` is tombstoned (objective weights zeroed — bounds
  /// kept, so the previous basis stays primal feasible and the next solve
  /// can hot-start; a weightless variable only appears on the small side
  /// of <= rows whose large side is a shared live variable, so the optimal
  /// value still equals a from-scratch rebuild's). One patch op is charged
  /// per tombstoned block. Returns true when the entry should be rebuilt
  /// instead: dead mass above `max_dead_ratio` times the *prospective*
  /// live mass — the surviving blocks plus the window samples about to be
  /// appended (valued at the historical mean block size). Counting the
  /// pending appends matters: at high window churn the pre-append live
  /// mass alone understates the solved model and forces rebuilds every
  /// epoch.
  bool TombstoneOutsideWindow(const std::vector<uint64_t>& window_stamps,
                              double max_dead_ratio, int* patch_ops);

  /// True when the base keys no longer describe the planning inputs and
  /// the model must be rebuilt from scratch.
  bool Stale(uint64_t epoch, uint64_t sid, uint64_t fingerprint,
             int request_k) const {
    return !built || topo_epoch != epoch || set_id != sid ||
           cost_fingerprint != fingerprint || k != request_k;
  }
};

/// Versioned cross-query planning state shared by all four planners, the
/// plan manager, and plan sweeps: topology-derived caches keyed on
/// net::Topology::epoch(), and incremental LP models keyed additionally on
/// the sample window's (id, version) and a cost-model fingerprint. A null
/// workspace everywhere means planners recompute from scratch — the exact
/// seed behavior; with a workspace, plans are bit-identical and only the
/// work to produce them changes. Thread-safe: topology caches are shared
/// immutable snapshots, LP entries are handed out under exclusive leases.
class PlanningWorkspace {
 public:
  using IntLists = std::vector<std::vector<int>>;

  explicit PlanningWorkspace(WorkspaceOptions options = {})
      : options_(options) {}
  PlanningWorkspace(const PlanningWorkspace&) = delete;
  PlanningWorkspace& operator=(const PlanningWorkspace&) = delete;

  const WorkspaceOptions& options() const { return options_; }

  /// ComputePathCache(topology), cached per topology epoch.
  std::shared_ptr<const IntLists> Paths(const net::Topology& topology,
                                        util::ThreadPool* pool = nullptr);
  /// AncestorsOf(i) for every node, cached per topology epoch.
  std::shared_ptr<const IntLists> Ancestors(const net::Topology& topology);
  /// DescendantsOf(i) for every node, cached per topology epoch.
  std::shared_ptr<const IntLists> Descendants(const net::Topology& topology);

  /// Exclusive lease on the cached LP for (kind, lease_key). The same key
  /// always yields the same entry, so a deterministic caller sees a
  /// deterministic cache history — PlanSweep keys by request index,
  /// sessions use key 0. If the slot is (erroneously) already leased, a
  /// fresh throwaway entry is returned instead: the caller plans cold,
  /// which is always correct.
  class LpLease {
   public:
    LpLease() = default;
    LpLease(LpLease&& other) noexcept { *this = std::move(other); }
    LpLease& operator=(LpLease&& other) noexcept;
    LpLease(const LpLease&) = delete;
    LpLease& operator=(const LpLease&) = delete;
    ~LpLease() { Release(); }

    LpEntry* get() { return entry_.get(); }
    LpEntry* operator->() { return entry_.get(); }
    explicit operator bool() const { return entry_ != nullptr; }
    void Release();

   private:
    friend class PlanningWorkspace;
    PlanningWorkspace* workspace_ = nullptr;
    LpKind kind_ = LpKind::kNoFilter;
    int key_ = 0;
    std::unique_ptr<LpEntry> entry_;
    bool cached_ = false;  ///< false = throwaway, dropped on release
  };

  LpLease AcquireLp(LpKind kind, int lease_key);

  /// The packed hit matrix for `samples`, cached across queries. In-sync
  /// hits are free; a slid window of the same lineage clones the cached
  /// matrix and applies the delta (append-only rows, tombstones as mask
  /// words — readers of the previous shared_ptr are never mutated under);
  /// other changes rebuild. The returned matrix is bit-exact with
  /// `samples`, so plans are identical with or without the cache.
  std::shared_ptr<const HitMatrix> Hits(const sampling::SampleSet& samples);

  /// Solves the entry's model, warm-starting from its stored basis when
  /// the options allow, and stores the new basis back for next time.
  /// Accounts warm attempts/successes and the lp.* metrics.
  Result<lp::Solution> SolveLp(LpEntry* entry,
                               const lp::SimplexOptions& simplex);

  /// Counter hooks for the planners (mirrored to global metrics).
  void NoteLpHit();
  void NoteLpMiss();
  void NoteLpPatch(int ops = 1);

  /// Drops every cache (topology snapshots, LP entries, counters stay).
  /// Sessions call this after a self-healing rebuild: the new epoch would
  /// miss anyway, Clear just releases the stale memory promptly.
  void Clear();

  WorkspaceCounters counters() const;

  /// Order-insensitive digest of every cost the planners read off the
  /// context (energy scalars plus each edge's expected failure inflation).
  /// Cached LP coefficients bake these in, so a drifted cost model must
  /// force a rebuild.
  static uint64_t CostFingerprint(const PlannerContext& ctx);

 private:
  struct TopoCacheSlot {
    uint64_t epoch = 0;
    std::shared_ptr<const IntLists> data;
  };

  std::shared_ptr<const IntLists> TopoCache(const net::Topology& topology,
                                            TopoCacheSlot* slot,
                                            util::ThreadPool* pool,
                                            int which);

  void ReleaseLp(LpKind kind, int key, std::unique_ptr<LpEntry> entry);

  WorkspaceOptions options_;
  mutable std::mutex mu_;
  TopoCacheSlot paths_, ancestors_, descendants_;
  /// (kind, lease key) -> entry; a leased slot maps to nullptr until the
  /// lease returns it.
  std::map<std::pair<int, int>, std::unique_ptr<LpEntry>> lp_entries_;
  /// Most recent packed hit matrix (see Hits()).
  std::shared_ptr<const HitMatrix> hits_cache_;
  WorkspaceCounters counters_;
};

/// The single ComputePathCache front door for planners: serves the cached
/// per-epoch copy when a workspace is available, computes a fresh one
/// otherwise (the seed path). The returned lists are identical either way.
std::shared_ptr<const PlanningWorkspace::IntLists> GetPathCache(
    PlanningWorkspace* workspace, const net::Topology& topology,
    util::ThreadPool* pool = nullptr);

/// AncestorsOf(i) for every node, through the workspace when present.
std::shared_ptr<const PlanningWorkspace::IntLists> GetAncestors(
    PlanningWorkspace* workspace, const net::Topology& topology);

/// DescendantsOf(i) for every node, through the workspace when present.
std::shared_ptr<const PlanningWorkspace::IntLists> GetDescendants(
    PlanningWorkspace* workspace, const net::Topology& topology);

/// The packed hit matrix front door for planners and the plan manager:
/// the workspace's cached copy when one is attached, a freshly packed
/// matrix otherwise (the seed path). Bit-exact with `samples` either way.
std::shared_ptr<const HitMatrix> GetHitMatrix(
    PlanningWorkspace* workspace, const sampling::SampleSet& samples);

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_WORKSPACE_H_
