#include "src/core/hit_matrix.h"

#include <algorithm>
#include <bit>

#include "src/obs/obs.h"

namespace prospector {
namespace core {

int HitMatrix::AppendRow(const sampling::SampleSet& samples, int j) {
  const int slot = static_cast<int>(slot_stamp_.size());
  slot_stamp_.push_back(samples.sample_stamp(j));
  rows_.resize(rows_.size() + words_, 0);
  uint64_t* r = rows_.data() + static_cast<size_t>(slot) * words_;
  for (int i : samples.ones(j)) {
    r[i >> 6] |= uint64_t{1} << (i & 63);
    ++column_sums_[i];
    ++total_ones_;
  }
  if ((slot >> 6) >= static_cast<int>(live_.size())) live_.push_back(0);
  live_[slot >> 6] |= uint64_t{1} << (slot & 63);
  return slot;
}

void HitMatrix::TombstoneSlot(int slot) {
  live_[slot >> 6] &= ~(uint64_t{1} << (slot & 63));
  const uint64_t* r = rows_.data() + static_cast<size_t>(slot) * words_;
  for (int w = 0; w < words_; ++w) {
    uint64_t bits = r[w];
    while (bits != 0) {
      const int i = (w << 6) + std::countr_zero(bits);
      bits &= bits - 1;
      --column_sums_[i];
      --total_ones_;
    }
  }
  ++dead_slots_;
}

void HitMatrix::RebuildFrom(const sampling::SampleSet& samples) {
  PROSPECTOR_COUNTER_ADD("hit_matrix.rebuilds", 1);
  num_nodes_ = samples.num_nodes();
  words_ = (num_nodes_ + 63) / 64;
  rows_.clear();
  live_.clear();
  slot_stamp_.clear();
  window_slot_.clear();
  column_sums_.assign(num_nodes_, 0);
  total_ones_ = 0;
  dead_slots_ = 0;
  const int S = samples.num_samples();
  window_slot_.reserve(S);
  rows_.reserve(static_cast<size_t>(S) * words_);
  for (int j = 0; j < S; ++j) window_slot_.push_back(AppendRow(samples, j));
}

void HitMatrix::Sync(const sampling::SampleSet& samples) {
  if (InSyncWith(samples)) return;
  const int S = samples.num_samples();
  // A new lineage, a node-count change, or a version running backwards
  // (this matrix was synced to a newer window of the same lineage than
  // `samples` — the stamp ledger can't be rolled back) all rebuild.
  if (!synced_ || set_id_ != samples.id() ||
      num_nodes_ != samples.num_nodes() || samples.version() < set_version_) {
    RebuildFrom(samples);
  } else {
    // Same lineage, newer window. Reconcile by stamps: both the live slots
    // and the window are stamp-ascending, so one merge pass tombstones
    // departed rows, reuses surviving ones, and appends the new tail.
    // Appends are legal only past the end of the slot ledger (they must
    // keep it ascending); a window stamp that is missing mid-ledger, or
    // lands on a tombstoned slot, means the set diverged from the history
    // this matrix followed (e.g. a forked copy) — rebuild instead.
    std::vector<int> new_window;
    new_window.reserve(S);
    const int num_slots = static_cast<int>(slot_stamp_.size());
    int slot = 0;
    bool appending = false;  // reached the ledger end; rest is new tail
    bool diverged = false;
    for (int j = 0; j < S && !diverged; ++j) {
      const uint64_t stamp = samples.sample_stamp(j);
      if (!appending) {
        while (slot < num_slots && slot_stamp_[slot] < stamp) {
          if (SlotLive(slot)) TombstoneSlot(slot);
          ++slot;
        }
        appending = slot == num_slots;
      }
      if (appending) {
        new_window.push_back(AppendRow(samples, j));
      } else if (slot_stamp_[slot] == stamp && SlotLive(slot)) {
        new_window.push_back(slot);
        ++slot;
      } else {
        diverged = true;
      }
    }
    if (diverged) {
      RebuildFrom(samples);
    } else {
      while (slot < num_slots) {
        if (SlotLive(slot)) TombstoneSlot(slot);
        ++slot;
      }
      window_slot_ = std::move(new_window);
      PROSPECTOR_COUNTER_ADD("hit_matrix.incremental_syncs", 1);
      // Compact once tombstones dominate: dead rows cost memory and cache
      // locality (live rows scatter across the slot array), never
      // correctness.
      if (dead_slots_ > S + 64) RebuildFrom(samples);
    }
  }
  set_id_ = samples.id();
  set_version_ = samples.version();
  synced_ = true;
}

}  // namespace core
}  // namespace prospector
