#ifndef PROSPECTOR_CORE_QUERY_REGISTRY_H_
#define PROSPECTOR_CORE_QUERY_REGISTRY_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/health.h"
#include "src/core/lp_no_filter_planner.h"
#include "src/core/plan_manager.h"
#include "src/sampling/sample_set.h"
#include "src/util/status.h"

namespace prospector {
namespace core {

/// Which PROSPECTOR algorithm plans a query.
enum class PlannerChoice { kGreedy, kLpNoFilter, kLpFilter };

/// What one registered query asks for. Everything here is per query; the
/// deployment-wide knobs (sample window, bootstrap, faults, watchdog)
/// live in QueryEngineOptions.
struct QuerySpec {
  int k = 10;
  double energy_budget_mj = 10.0;
  PlannerChoice planner = PlannerChoice::kLpFilter;
  LpPlannerOptions lp;
  PlanManagerOptions manager;
  /// Every `audit_every` query epochs, run a proof-carrying exact query to
  /// measure true accuracy and drive re-sampling; 0 disables audits.
  int audit_every = 0;
  /// Phase-1 budget of an audit, as a multiple of the proof floor.
  double audit_budget_factor = 1.15;
  /// Service-level objectives this query's health is scored against.
  HealthSlo slo;
  /// Owning tenant when the query was admitted through the fleet service;
  /// -1 for directly-registered queries. Tags health reports and fleet
  /// rollups (see DESIGN.md, "Fleet service").
  int tenant_id = -1;
};

/// Everything the engine keeps per admitted query: its spec, its own
/// sample window (contribution rows depend on the query's k, so windows
/// cannot be shared even though the underlying sweeps are), its planner
/// and re-planning policy, and its energy ledger (attributed shares of
/// the shared radio cost — see DESIGN.md, "Multi-query engine").
struct QueryState {
  QueryState(int id, const QuerySpec& spec, int num_nodes,
             size_t sample_window);

  int id;
  QuerySpec spec;
  sampling::SampleSet samples;
  std::unique_ptr<Planner> planner;
  PlanManager manager;

  int queries_since_audit = 0;
  double last_replan_latency_ms = 0.0;
  /// Rolling-window SLO scorer fed once per tick (see DESIGN.md, "Flight
  /// recorder & health model").
  QueryHealthTracker health;

  /// Attributed energy by activity, mJ. Shared epochs (sweeps, merged
  /// superplans) are split across the queries aboard, so summing these
  /// over all queries reproduces the engine's audited totals.
  double query_energy_mj = 0.0;
  double sampling_energy_mj = 0.0;
  double audit_energy_mj = 0.0;
  double install_energy_mj = 0.0;
  double total_energy_mj() const {
    return query_energy_mj + sampling_energy_mj + audit_energy_mj +
           install_energy_mj;
  }
};

/// The admission/retirement layer: owns the QueryStates and guarantees
/// ids are never reused.
///
/// The registry is sharded: a power-of-two shard count, shard(id) =
/// id & mask, one mutex per shard. Admit/retire/find touch exactly one
/// shard, so they are O(1) and safe from concurrent callers operating on
/// distinct ids (e.g. a ParallelFor admitting a batch) — the workload the
/// fleet service puts on it at thousands of standing queries.
///
/// Iteration order is ascending query id, never admission wall-clock
/// order, so the engine's per-epoch walk is deterministic no matter which
/// thread admitted which query. ordered() returns a cached snapshot that
/// is rebuilt after any admit/retire; it must not be called concurrently
/// with mutation (the engine only iterates from its serial tick path).
class QueryRegistry {
 public:
  static constexpr int kDefaultShards = 16;

  /// `shards` is rounded up to the next power of two, minimum 1.
  explicit QueryRegistry(int shards = kDefaultShards);

  QueryRegistry(const QueryRegistry&) = delete;
  QueryRegistry& operator=(const QueryRegistry&) = delete;

  /// Admits with a registry-allocated id (the next unused integer).
  int Add(const QuerySpec& spec, int num_nodes, size_t sample_window);

  /// Admits under an externally supplied id — the fleet service owns
  /// global id allocation across deployments. Fails (and admits nothing)
  /// if the id was ever admitted to this registry before, live or
  /// retired: ids never alias, so attribution pools and health windows
  /// of a retired query can never be revived by a newcomer.
  Result<int> AddWithId(int id, const QuerySpec& spec, int num_nodes,
                        size_t sample_window);

  /// Retires a query. Returns false for an unknown id. The id stays
  /// burned: re-admitting it is an error forever.
  bool Remove(int id);

  QueryState* Find(int id);
  const QueryState* Find(int id) const;

  int size() const { return count_.load(std::memory_order_acquire); }
  /// Live ids, ascending.
  std::vector<int> ids() const;

  /// Live queries in ascending-id order — the engine's iteration order.
  /// The reference is valid until the next admit/retire. Not safe to call
  /// concurrently with mutation.
  const std::vector<QueryState*>& ordered() const;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  /// High-water mark: no id >= this has ever been issued.
  int next_id() const { return next_id_.load(std::memory_order_acquire); }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<int, std::unique_ptr<QueryState>> live;
    /// Every id ever admitted to this shard (live or retired).
    std::unordered_set<int> used;
  };

  Shard& ShardFor(int id) {
    return *shards_[static_cast<size_t>(id) & mask_];
  }
  const Shard& ShardFor(int id) const {
    return *shards_[static_cast<size_t>(id) & mask_];
  }
  /// Raises next_id_ to at least `floor` (CAS max).
  void RaiseNextId(int floor);

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t mask_;
  std::atomic<int> next_id_{0};
  std::atomic<int> count_{0};

  /// Ascending-id iteration snapshot, rebuilt lazily after mutation.
  mutable std::mutex order_mu_;
  mutable std::atomic<bool> order_dirty_{true};
  mutable std::vector<QueryState*> order_;
};

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_QUERY_REGISTRY_H_
