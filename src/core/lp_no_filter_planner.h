#ifndef PROSPECTOR_CORE_LP_NO_FILTER_PLANNER_H_
#define PROSPECTOR_CORE_LP_NO_FILTER_PLANNER_H_

#include <memory>

#include "src/core/planner.h"
#include "src/lp/simplex.h"

namespace prospector {
namespace core {

/// Knobs shared by the LP planners.
struct LpPlannerOptions {
  lp::SimplexOptions simplex;
  /// Rounding threshold for relaxed 0/1 variables (Section 4.1 uses 1/2).
  double rounding_threshold = 0.5;
  /// After rounding, drop the least valuable choices until the plan's
  /// expected cost is back within the budget (the paper's bound allows the
  /// rounded plan to cost up to 2C; repair enforces C exactly).
  bool repair_budget = true;
  /// After repair, greedily add choices that still fit (uses leftover
  /// budget the conservative rounding left on the table).
  bool fill_budget = true;
  /// Proof LP only: at most this many (most recent) samples enter the
  /// program — its size grows as #samples x #nodes x tree height, so a
  /// large sample window must be subsampled (<= 0 disables the cap).
  int max_proof_samples = 8;
  /// Worker threads for constraint construction and candidate scoring;
  /// 1 = the serial seed path. Plans and objective values are
  /// bit-identical for every thread count (reductions combine in index
  /// order); only wall time changes.
  int threads = 1;
};

/// PROSPECTOR LP-LF (Section 4.1): topology-aware linear program without
/// local filtering. One relaxed 0/1 variable x_i per node (acquire node
/// i's value and ship it to the root) and z_e per edge (edge used by the
/// plan), maximizing the samples' column-sum mass subject to
///   x_i <= z_e            for every edge e above i,
///   sum_e c_m(e) z_e + sum_i (sum_{e in path(i)} c_v(e)) x_i <= budget.
/// The solution is rounded at `rounding_threshold` into a node-selection
/// plan (chosen values always travel to the root; no run-time filtering).
class LpNoFilterPlanner : public Planner {
 public:
  explicit LpNoFilterPlanner(LpPlannerOptions options = {})
      : options_(options) {}

  Result<QueryPlan> Plan(const PlannerContext& ctx,
                         const sampling::SampleSet& samples,
                         const PlanRequest& request) override;
  std::string name() const override { return "ProspectorLP-LF"; }

  /// Objective value of the fractional LP optimum from the last Plan()
  /// call (expected sample hits; an upper bound on the integral optimum).
  double last_lp_objective() const { return last_lp_objective_; }

 private:
  LpPlannerOptions options_;
  std::unique_ptr<util::ThreadPool> pool_;
  double last_lp_objective_ = 0.0;
};

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_LP_NO_FILTER_PLANNER_H_
