#ifndef PROSPECTOR_CORE_READING_H_
#define PROSPECTOR_CORE_READING_H_

#include <algorithm>
#include <vector>

namespace prospector {
namespace core {

/// One sensor reading in flight: which node produced it and its value.
struct Reading {
  int node = -1;
  double value = 0.0;

  bool operator==(const Reading& other) const {
    return node == other.node && value == other.value;
  }
};

/// Strict total order used for every ranking decision in the library:
/// higher value ranks first; ties break toward the lower node id. A total
/// order removes all tie ambiguity from proofs and the mop-up protocol.
inline bool ReadingRanksHigher(const Reading& a, const Reading& b) {
  if (a.value != b.value) return a.value > b.value;
  return a.node < b.node;
}

/// Sorts best-first under ReadingRanksHigher.
inline void SortReadings(std::vector<Reading>* rs) {
  std::sort(rs->begin(), rs->end(), ReadingRanksHigher);
}

/// The true top-k of a full network reading vector, best-first.
inline std::vector<Reading> TrueTopK(const std::vector<double>& truth, int k) {
  std::vector<Reading> all(truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    all[i] = {static_cast<int>(i), truth[i]};
  }
  SortReadings(&all);
  if (static_cast<int>(all.size()) > k) all.resize(k);
  return all;
}

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_READING_H_
