#include "src/core/greedy_planner.h"

#include <algorithm>
#include <vector>

#include "src/core/plan_eval.h"
#include "src/core/workspace.h"
#include "src/obs/obs.h"

namespace prospector {
namespace core {

Result<QueryPlan> GreedyPlanner::Plan(const PlannerContext& ctx,
                                      const sampling::SampleSet& samples,
                                      const PlanRequest& request) {
  PROSPECTOR_SPAN("planner.greedy.plan");
  last_stats_ = PlannerStats{};
  const net::Topology& topo = *ctx.topology;
  const int n = topo.num_nodes();
  const int root = topo.root();
  if (samples.num_nodes() != n) {
    return Status::InvalidArgument("sample set does not match topology size");
  }
  util::ThreadPool* pool = EnsureThreadPool(&pool_, options_.threads);

  // Candidate order: descending column sum, then node id (deterministic).
  // Scores come off the packed hit matrix (cached across queries when a
  // workspace is attached) — the same integers SampleSet::column_sums()
  // maintains, so the plan is identical.
  const auto hits_ptr = GetHitMatrix(ctx.workspace, samples);
  std::vector<int> order;
  for (int i = 0; i < n; ++i) {
    if (i != root) order.push_back(i);
  }
  const std::vector<int>& colsum = hits_ptr->column_sums();
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (colsum[a] != colsum[b]) return colsum[a] > colsum[b];
    return a < b;
  });

  // Root paths per candidate, precomputed in parallel (each entry is
  // independent) and cached across queries when a workspace is attached;
  // the greedy scan itself stays sequential and accumulates costs in
  // exactly the serial order, so plans are bit-identical for any thread
  // count and with or without the cache.
  const auto paths_ptr = GetPathCache(ctx.workspace, topo, pool);
  const std::vector<std::vector<int>>& paths = *paths_ptr;

  std::vector<char> chosen(n, 0);
  std::vector<char> edge_used(n, 0);
  double cost = 0.0;
  for (int i : order) {
    if (colsum[i] == 0) break;  // remaining nodes never contributed
    double added = ctx.NodeAcquisitionCost();
    for (int e : paths[i]) {
      added += ctx.EdgePerValueCost(e);
      if (!edge_used[e]) added += ctx.EdgeFixedCost(e);
    }
    if (cost + added > request.energy_budget_mj) break;
    cost += added;
    chosen[i] = 1;
    for (int e : paths[i]) edge_used[e] = 1;
  }

  QueryPlan plan = QueryPlan::NodeSelection(request.k, std::move(chosen), topo);
  plan.Normalize(topo);
  return plan;
}

}  // namespace core
}  // namespace prospector
