#include "src/core/cluster_query.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace prospector {
namespace core {

Clustering ClusterByGrid(const net::Topology& topology, int cells_x,
                         int cells_y) {
  Clustering c;
  const int n = topology.num_nodes();
  c.cluster_of_node.assign(n, -1);
  const std::vector<net::Point>& pos = topology.positions();
  if (pos.empty() || cells_x <= 0 || cells_y <= 0) return c;

  double min_x = pos[0].x, max_x = pos[0].x;
  double min_y = pos[0].y, max_y = pos[0].y;
  for (const net::Point& p : pos) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const double w = std::max(max_x - min_x, 1e-9);
  const double h = std::max(max_y - min_y, 1e-9);

  // First pass: raw cell ids; second pass: densify over non-empty cells.
  std::map<int, int> dense_id;
  for (int i = 1; i < n; ++i) {  // the root stays unclustered
    int cx = std::min(cells_x - 1,
                      static_cast<int>((pos[i].x - min_x) / w * cells_x));
    int cy = std::min(cells_y - 1,
                      static_cast<int>((pos[i].y - min_y) / h * cells_y));
    const int raw = cy * cells_x + cx;
    auto [it, inserted] = dense_id.try_emplace(raw, c.num_clusters);
    if (inserted) ++c.num_clusters;
    c.cluster_of_node[i] = it->second;
  }
  return c;
}

std::vector<double> ClusterAverages(const Clustering& clustering,
                                    const std::vector<double>& values) {
  std::vector<double> sum(clustering.num_clusters, 0.0);
  std::vector<int> count(clustering.num_clusters, 0);
  for (size_t i = 0; i < values.size(); ++i) {
    const int cl = clustering.cluster_of_node[i];
    if (cl < 0) continue;
    sum[cl] += values[i];
    ++count[cl];
  }
  std::vector<double> avg(clustering.num_clusters);
  for (int cl = 0; cl < clustering.num_clusters; ++cl) {
    avg[cl] = count[cl] > 0 ? sum[cl] / count[cl] : std::nan("");
  }
  return avg;
}

std::vector<int> TopClusters(const std::vector<double>& averages, int k) {
  std::vector<int> ids;
  for (size_t cl = 0; cl < averages.size(); ++cl) {
    if (!std::isnan(averages[cl])) ids.push_back(static_cast<int>(cl));
  }
  std::sort(ids.begin(), ids.end(), [&](int a, int b) {
    if (averages[a] != averages[b]) return averages[a] > averages[b];
    return a < b;
  });
  if (static_cast<int>(ids.size()) > k) ids.resize(k);
  return ids;
}

sampling::ContributorFn ClusterTopKContributor(Clustering clustering, int k) {
  return [clustering = std::move(clustering),
          k](const std::vector<double>& values) {
    const std::vector<double> avg = ClusterAverages(clustering, values);
    const std::vector<int> top = TopClusters(avg, k);
    std::vector<char> winning(clustering.num_clusters, 0);
    for (int cl : top) winning[cl] = 1;
    std::vector<int> contributors;
    for (size_t i = 0; i < values.size(); ++i) {
      const int cl = clustering.cluster_of_node[i];
      if (cl >= 0 && winning[cl]) contributors.push_back(static_cast<int>(i));
    }
    return contributors;
  };
}

ClusterAggregateResult ExecuteClusterAggregate(const Clustering& clustering,
                                               const std::vector<double>& truth,
                                               int k,
                                               net::NetworkSimulator* sim) {
  const net::Topology& topo = sim->topology();
  const int n = topo.num_nodes();
  ClusterAggregateResult result;

  struct Partial {
    double sum = 0.0;
    int count = 0;
  };
  // Sparse per-node partial maps, merged bottom-up (TAG-style).
  std::vector<std::map<int, Partial>> partials(n);
  for (int u : topo.PostOrder()) {
    const int cl = clustering.cluster_of_node[u];
    if (cl >= 0) {
      Partial& p = partials[u][cl];
      p.sum += truth[u];
      p.count += 1;
    }
    if (u == topo.root()) break;
    for (auto& [c, p] : partials[u]) {
      Partial& up = partials[topo.parent(u)][c];
      up.sum += p.sum;
      up.count += p.count;
    }
    // One message per edge carrying one value slot per cluster partial.
    result.energy_mj +=
        sim->Unicast(u, static_cast<int>(partials[u].size()));
    ++result.messages;
  }

  result.cluster_avg.assign(clustering.num_clusters, std::nan(""));
  for (const auto& [cl, p] : partials[topo.root()]) {
    result.cluster_avg[cl] = p.sum / p.count;
  }
  result.top_clusters = TopClusters(result.cluster_avg, k);
  return result;
}

std::vector<int> EstimateTopClusters(const Clustering& clustering,
                                     const std::vector<Reading>& arrived,
                                     int k) {
  std::vector<double> sum(clustering.num_clusters, 0.0);
  std::vector<int> count(clustering.num_clusters, 0);
  for (const Reading& r : arrived) {
    const int cl = clustering.cluster_of_node[r.node];
    if (cl < 0) continue;
    sum[cl] += r.value;
    ++count[cl];
  }
  std::vector<double> avg(clustering.num_clusters);
  for (int cl = 0; cl < clustering.num_clusters; ++cl) {
    avg[cl] = count[cl] > 0 ? sum[cl] / count[cl] : std::nan("");
  }
  return TopClusters(avg, k);
}

double ClusterRecall(const std::vector<int>& estimated,
                     const std::vector<int>& truth) {
  if (truth.empty()) return 1.0;
  int hit = 0;
  for (int t : truth) {
    for (int e : estimated) {
      if (e == t) {
        ++hit;
        break;
      }
    }
  }
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

}  // namespace core
}  // namespace prospector
