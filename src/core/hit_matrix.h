#ifndef PROSPECTOR_CORE_HIT_MATRIX_H_
#define PROSPECTOR_CORE_HIT_MATRIX_H_

#include <cstdint>
#include <vector>

#include "src/sampling/sample_set.h"

namespace prospector {
namespace core {

/// The Boolean contribution matrix Q of Section 3 ("was node i in the
/// answer of sample j"), bit-packed 64 nodes per word so plan scoring
/// becomes word operations: SampleHits over a node-selection plan is one
/// std::popcount per row word, column sums are bit-scan loops, and the
/// bandwidth recurrence touches only the ancestors of set bits instead of
/// every node.
///
/// The matrix mirrors a sampling::SampleSet window incrementally. Rows are
/// append-only and keyed by the owning sample's stamp; when the window
/// slides, departed rows are tombstoned (their bit in the `live_` mask
/// words is cleared and their counts are backed out) rather than moved, so
/// a sync after a slide costs O(changed rows), not O(window). Remaps and
/// lineage changes rebuild from scratch, and tombstone mass is compacted
/// away once it outgrows the live window. Synced matrices are bit-exact
/// with the source set: Contributes and column_sums return identical
/// values, which is what keeps planner decisions independent of whether a
/// cached matrix or the raw window scored them.
class HitMatrix {
 public:
  HitMatrix() = default;

  /// Reconciles this matrix with the sample window: no-op when already in
  /// sync, row appends/tombstones for a slid window of the same lineage,
  /// full rebuild for a new lineage (remap, Recent) or shrunken history.
  void Sync(const sampling::SampleSet& samples);

  /// True when this matrix reflects exactly `samples`' current contents.
  bool InSyncWith(const sampling::SampleSet& samples) const {
    return synced_ && set_id_ == samples.id() &&
           set_version_ == samples.version();
  }

  int num_nodes() const { return num_nodes_; }
  /// Rows currently mapped, in window order (index j matches the set's).
  int num_samples() const { return static_cast<int>(window_slot_.size()); }
  int words_per_row() const { return words_; }

  /// Packed row of window sample j: bit i set iff node i contributed.
  const uint64_t* row(int j) const {
    return rows_.data() + static_cast<size_t>(window_slot_[j]) * words_;
  }

  bool Contributes(int j, int i) const {
    return (row(j)[i >> 6] >> (i & 63)) & 1;
  }

  /// Identical integers to SampleSet::column_sums(), maintained
  /// incrementally from the packed rows.
  const std::vector<int>& column_sums() const { return column_sums_; }

  /// Identical to SampleSet::total_ones().
  int total_ones() const { return total_ones_; }

  uint64_t set_id() const { return set_id_; }
  uint64_t set_version() const { return set_version_; }

 private:
  void RebuildFrom(const sampling::SampleSet& samples);
  /// Appends sample j of `samples` as a new slot; returns the slot index.
  int AppendRow(const sampling::SampleSet& samples, int j);
  void TombstoneSlot(int slot);
  bool SlotLive(int slot) const {
    return (live_[slot >> 6] >> (slot & 63)) & 1;
  }

  int num_nodes_ = 0;
  int words_ = 0;
  /// Slot-major packed rows; slots are append-only between rebuilds.
  std::vector<uint64_t> rows_;
  /// One bit per slot: still part of the window? (tombstones are 0).
  std::vector<uint64_t> live_;
  /// Owning sample's stamp per slot, ascending (stamps are monotonic).
  std::vector<uint64_t> slot_stamp_;
  /// Window index j -> slot holding its row.
  std::vector<int> window_slot_;
  std::vector<int> column_sums_;
  int total_ones_ = 0;
  int dead_slots_ = 0;
  uint64_t set_id_ = 0;
  uint64_t set_version_ = 0;
  bool synced_ = false;
};

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_HIT_MATRIX_H_
