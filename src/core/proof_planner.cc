#include "src/core/proof_planner.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/lp/model.h"
#include "src/obs/obs.h"

namespace prospector {
namespace core {

double ProofPlanner::MinimumCost(const PlannerContext& ctx) {
  const net::Topology& topo = *ctx.topology;
  // Every sensing node takes a measurement (the mains-powered base
  // station's sensing is not budgeted).
  double cost = (topo.num_nodes() - 1) * ctx.NodeAcquisitionCost();
  for (int e = 1; e < topo.num_nodes(); ++e) {
    cost += ctx.EdgeMessageCost(e, 1);
    // Reserve for the proven-count byte on non-leaf edges (Section 4.3,
    // step 4: leaves never transmit the count).
    if (!topo.is_leaf(e)) {
      cost += ctx.energy.per_byte_mj * ctx.failures.ExpectedCostFactor(e);
    }
  }
  return cost;
}

Result<QueryPlan> ProofPlanner::Plan(const PlannerContext& ctx,
                                     const sampling::SampleSet& all_samples,
                                     const PlanRequest& request) {
  PROSPECTOR_SPAN("planner.proof.plan");
  last_stats_ = PlannerStats{};
  const net::Topology& topo = *ctx.topology;
  const int n = topo.num_nodes();
  if (all_samples.num_nodes() != n) {
    return Status::InvalidArgument("sample set does not match topology size");
  }
  // The proof LP has one variable per (sample, node, ancestor) triple, so a
  // large sample window must be subsampled to keep the program tractable.
  const bool cap = options_.max_proof_samples > 0 &&
                   all_samples.num_samples() > options_.max_proof_samples;
  const sampling::SampleSet capped =
      cap ? all_samples.Recent(options_.max_proof_samples)
          : sampling::SampleSet::ForTopK(0, 0);
  const sampling::SampleSet& samples = cap ? capped : all_samples;
  const double floor_cost = MinimumCost(ctx);
  if (request.energy_budget_mj < floor_cost) {
    return Status::FailedPrecondition(
        "budget " + std::to_string(request.energy_budget_mj) +
        " mJ below the proof-carrying floor of " + std::to_string(floor_cost) +
        " mJ (every edge must carry at least one value)");
  }
  const int S = samples.num_samples();

  // Ancestor lists: anc[i] = {i, parent(i), ..., root}.
  std::vector<std::vector<int>> anc(n);
  for (int i = 0; i < n; ++i) anc[i] = topo.AncestorsOf(i);

  lp::Model model;
  model.SetSense(lp::Sense::kMaximize);

  // Bandwidths: at least one value on every edge.
  std::vector<int> b(n, -1);
  for (int e = 1; e < n; ++e) {
    b[e] = model.AddVariable(1.0, topo.subtree_size(e), 0.0);
  }

  // p[j] maps (i, ancestor-position m) -> LP variable.
  // Objective: top-k entries proven at the root.
  std::vector<std::vector<std::vector<int>>> p(S);
  for (int j = 0; j < S; ++j) {
    p[j].assign(n, {});
    for (int i = 0; i < n; ++i) {
      p[j][i].resize(anc[i].size());
      const bool counts =
          samples.Contributes(j, i);  // in ones(j): proven-at-root scores
      for (size_t m = 0; m < anc[i].size(); ++m) {
        const bool is_root_level = (m + 1 == anc[i].size());
        p[j][i][m] =
            model.AddBinaryRelaxed(counts && is_root_level ? 1.0 : 0.0);
      }
    }
  }

  for (int j = 0; j < S; ++j) {
    // Line (12): proven values at v must fit v's bandwidth.
    for (int v = 1; v < n; ++v) {
      std::vector<lp::Term> row;
      for (int i : topo.DescendantsOf(v)) {
        // position of v in anc[i] = depth(i) - depth(v).
        const int m = topo.depth(i) - topo.depth(v);
        row.push_back({p[j][i][m], 1.0});
      }
      row.push_back({b[v], -1.0});
      model.AddRow(lp::RowType::kLessEqual, 0.0, std::move(row));
    }

    for (int i = 0; i < n; ++i) {
      for (size_t m = 0; m < anc[i].size(); ++m) {
        const int a = anc[i][m];
        // Line (13): proven at a requires proven at the previous node on
        // the path from i.
        if (m > 0) {
          model.AddRow(lp::RowType::kLessEqual, 0.0,
                       {{p[j][i][m], 1.0}, {p[j][i][m - 1], -1.0}});
        }
        // Line (14): every off-path child of a must prove a smaller value.
        const int path_child = m > 0 ? anc[i][m - 1] : -1;
        for (int c : topo.children(a)) {
          if (c == path_child) continue;
          std::vector<lp::Term> row{{p[j][i][m], 1.0}};
          bool any_smaller = false;
          for (int ip : topo.DescendantsOf(c)) {
            if (samples.IsSmaller(j, ip, i)) {
              any_smaller = true;
              const int mc = topo.depth(ip) - topo.depth(c);
              row.push_back({p[j][ip][mc], -1.0});
            }
          }
          // The (c.3) exception: no smaller value exists in c's subtree;
          // the constraint is omitted (the paper's formulation).
          if (any_smaller) {
            model.AddRow(lp::RowType::kLessEqual, 0.0, std::move(row));
          }
        }
      }
    }
  }

  // Line (11): budget over the bandwidth-dependent part. Per-message
  // costs and count-byte reserves are a constant floor.
  std::vector<lp::Term> cost_row;
  for (int e = 1; e < n; ++e) {
    cost_row.push_back({b[e], ctx.EdgePerValueCost(e)});
  }
  const double fixed_part = floor_cost -
                            [&] {
                              double one_value = 0.0;
                              for (int e = 1; e < n; ++e) {
                                one_value += ctx.EdgePerValueCost(e);
                              }
                              return one_value;
                            }();
  model.AddRow(lp::RowType::kLessEqual,
               request.energy_budget_mj - fixed_part, std::move(cost_row));

  lp::SimplexSolver solver(options_.simplex);
  auto solved = solver.Solve(model);
  if (!solved.ok()) return solved.status();
  last_stats_.lp = solved->stats;
  if (solved->status != lp::SolveStatus::kOptimal) {
    return Status::Internal(std::string("Proof LP solve failed: ") +
                            lp::ToString(solved->status));
  }
  last_lp_objective_ = solved->objective;

  // Round bandwidths half-up within [1, subtree size].
  std::vector<int> bw(n, 0);
  std::vector<double> frac(n, 0.0);
  for (int e = 1; e < n; ++e) {
    frac[e] = solved->values[b[e]];
    bw[e] = std::clamp(static_cast<int>(std::floor(frac[e] + 0.5)), 1,
                       topo.subtree_size(e));
  }

  // Repair: trim the edges we rounded up the most until within budget.
  if (options_.repair_budget) {
    auto plan_cost = [&] {
      double cost = fixed_part;
      for (int e = 1; e < n; ++e) cost += bw[e] * ctx.EdgePerValueCost(e);
      return cost;
    };
    while (plan_cost() > request.energy_budget_mj) {
      int worst = -1;
      double worst_gap = -1.0;
      for (int e = 1; e < n; ++e) {
        if (bw[e] <= 1) continue;
        const double gap = bw[e] - frac[e];
        if (gap > worst_gap) {
          worst_gap = gap;
          worst = e;
        }
      }
      if (worst < 0) break;  // already at the floor everywhere
      --bw[worst];
    }
  }

  return QueryPlan::Bandwidth(request.k, std::move(bw), /*proof_carrying=*/true);
}

}  // namespace core
}  // namespace prospector
