#include "src/core/proof_planner.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "src/core/workspace.h"
#include "src/lp/model.h"
#include "src/obs/obs.h"

namespace prospector {
namespace core {
namespace {

// Builds sample j's proof block — the p[i][m] variables plus rows
// (12)/(13)/(14) — into the model. A block is self-contained: it
// references only its own p variables and the shared per-edge bandwidths
// b, so appending one when the window slides never touches existing rows.
void AppendProofBlock(LpEntry* entry, const net::Topology& topo,
                      const sampling::SampleSet& samples, int j,
                      const PlanningWorkspace::IntLists& anc,
                      const PlanningWorkspace::IntLists& desc) {
  lp::Model& model = entry->model;
  const int n = topo.num_nodes();
  LpSampleBlock block;
  block.stamp = samples.sample_stamp(j);

  // p maps (i, ancestor-position m) -> LP variable.
  // Objective: top-k entries proven at the root.
  std::vector<std::vector<int>> p(n);
  for (int i = 0; i < n; ++i) {
    p[i].resize(anc[i].size());
    const bool counts =
        samples.Contributes(j, i);  // in ones(j): proven-at-root scores
    for (size_t m = 0; m < anc[i].size(); ++m) {
      const bool is_root_level = (m + 1 == anc[i].size());
      p[i][m] = model.AddBinaryRelaxed(counts && is_root_level ? 1.0 : 0.0);
      block.vars.push_back(p[i][m]);
    }
  }

  // Line (12): proven values at v must fit v's bandwidth.
  for (int v = 1; v < n; ++v) {
    std::vector<lp::Term> row;
    for (int i : desc[v]) {
      // position of v in anc[i] = depth(i) - depth(v).
      const int m = topo.depth(i) - topo.depth(v);
      row.push_back({p[i][m], 1.0});
    }
    row.push_back({entry->b[v], -1.0});
    model.AddRow(lp::RowType::kLessEqual, 0.0, std::move(row));
  }

  for (int i = 0; i < n; ++i) {
    for (size_t m = 0; m < anc[i].size(); ++m) {
      const int a = anc[i][m];
      // Line (13): proven at a requires proven at the previous node on
      // the path from i.
      if (m > 0) {
        model.AddRow(lp::RowType::kLessEqual, 0.0,
                     {{p[i][m], 1.0}, {p[i][m - 1], -1.0}});
      }
      // Line (14): every off-path child of a must prove a smaller value.
      const int path_child = m > 0 ? anc[i][m - 1] : -1;
      for (int c : topo.children(a)) {
        if (c == path_child) continue;
        std::vector<lp::Term> row{{p[i][m], 1.0}};
        bool any_smaller = false;
        for (int ip : desc[c]) {
          if (samples.IsSmaller(j, ip, i)) {
            any_smaller = true;
            const int mc = topo.depth(ip) - topo.depth(c);
            row.push_back({p[ip][mc], -1.0});
          }
        }
        // The (c.3) exception: no smaller value exists in c's subtree;
        // the constraint is omitted (the paper's formulation).
        if (any_smaller) {
          model.AddRow(lp::RowType::kLessEqual, 0.0, std::move(row));
        }
      }
    }
  }

  entry->live_block_vars += static_cast<int>(block.vars.size());
  entry->blocks.push_back(std::move(block));
}

}  // namespace

double ProofPlanner::MinimumCost(const PlannerContext& ctx) {
  const net::Topology& topo = *ctx.topology;
  // Every sensing node takes a measurement (the mains-powered base
  // station's sensing is not budgeted).
  double cost = (topo.num_nodes() - 1) * ctx.NodeAcquisitionCost();
  for (int e = 1; e < topo.num_nodes(); ++e) {
    cost += ctx.EdgeMessageCost(e, 1);
    // Reserve for the proven-count byte on non-leaf edges (Section 4.3,
    // step 4: leaves never transmit the count).
    if (!topo.is_leaf(e)) {
      cost += ctx.energy.per_byte_mj * ctx.failures.ExpectedCostFactor(e);
    }
  }
  return cost;
}

Result<QueryPlan> ProofPlanner::Plan(const PlannerContext& ctx,
                                     const sampling::SampleSet& all_samples,
                                     const PlanRequest& request) {
  PROSPECTOR_SPAN("planner.proof.plan");
  last_stats_ = PlannerStats{};
  const net::Topology& topo = *ctx.topology;
  const int n = topo.num_nodes();
  if (all_samples.num_nodes() != n) {
    return Status::InvalidArgument("sample set does not match topology size");
  }
  // The proof LP has one variable per (sample, node, ancestor) triple, so a
  // large sample window must be subsampled to keep the program tractable.
  // The window is the trailing `W` rows of all_samples, addressed in place
  // (no Recent() copy): sample rows are self-contained, so index offsets
  // read the same contributions the copy would.
  const int S_all = all_samples.num_samples();
  const bool cap = options_.max_proof_samples > 0 &&
                   S_all > options_.max_proof_samples;
  const int W = cap ? options_.max_proof_samples : S_all;
  const int offset = S_all - W;
  const double floor_cost = MinimumCost(ctx);
  if (request.energy_budget_mj < floor_cost) {
    return Status::FailedPrecondition(
        "budget " + std::to_string(request.energy_budget_mj) +
        " mJ below the proof-carrying floor of " + std::to_string(floor_cost) +
        " mJ (every edge must carry at least one value)");
  }

  // Ancestor lists anc[i] = {i, parent(i), ..., root} and descendant
  // lists, cached per topology epoch when a workspace is attached.
  const auto anc_ptr = GetAncestors(ctx.workspace, topo);
  const auto desc_ptr = GetDescendants(ctx.workspace, topo);
  const PlanningWorkspace::IntLists& anc = *anc_ptr;
  const PlanningWorkspace::IntLists& desc = *desc_ptr;

  // Budget decomposition used by both build paths and the repair loop:
  // per-message costs and count-byte reserves are a constant floor; only
  // the per-value bandwidth mass is the LP's to spend.
  const double fixed_part = floor_cost -
                            [&] {
                              double one_value = 0.0;
                              for (int e = 1; e < n; ++e) {
                                one_value += ctx.EdgePerValueCost(e);
                              }
                              return one_value;
                            }();

  PlanningWorkspace::LpLease lease;
  LpEntry local_entry;
  LpEntry* entry = &local_entry;
  if (ctx.workspace != nullptr) {
    lease = ctx.workspace->AcquireLp(LpKind::kProof, ctx.workspace_lease);
    entry = lease.get();
  }
  const uint64_t fingerprint = PlanningWorkspace::CostFingerprint(ctx);

  bool rebuild = entry->Stale(topo.epoch(), all_samples.id(), fingerprint,
                              options_.max_proof_samples);
  int patch_ops = 0;
  if (!rebuild) {
    std::vector<uint64_t> window_stamps(W);
    for (int w = 0; w < W; ++w) {
      window_stamps[w] = all_samples.sample_stamp(offset + w);
    }
    const double ratio = ctx.workspace != nullptr
                             ? ctx.workspace->options().max_dead_ratio
                             : 1.0;
    rebuild = entry->TombstoneOutsideWindow(window_stamps, ratio, &patch_ops);
  }

  if (rebuild) {
    if (ctx.workspace != nullptr) ctx.workspace->NoteLpMiss();
    entry->Reset();
    lp::Model& model = entry->model;
    model.SetSense(lp::Sense::kMaximize);

    // Bandwidths: at least one value on every edge.
    entry->b.assign(n, -1);
    for (int e = 1; e < n; ++e) {
      entry->b[e] = model.AddVariable(1.0, topo.subtree_size(e), 0.0);
    }

    for (int w = 0; w < W; ++w) {
      AppendProofBlock(entry, topo, all_samples, offset + w, anc, desc);
    }

    // Line (11): budget over the bandwidth-dependent part.
    std::vector<lp::Term> cost_row;
    for (int e = 1; e < n; ++e) {
      cost_row.push_back({entry->b[e], ctx.EdgePerValueCost(e)});
    }
    entry->budget_row =
        model.AddRow(lp::RowType::kLessEqual,
                     request.energy_budget_mj - fixed_part,
                     std::move(cost_row));
    entry->built = true;
    entry->topo_epoch = topo.epoch();
    entry->set_id = all_samples.id();
    entry->cost_fingerprint = fingerprint;
    entry->k = options_.max_proof_samples;
  } else {
    ctx.workspace->NoteLpHit();
    std::unordered_set<uint64_t> known;
    for (const LpSampleBlock& block : entry->blocks) known.insert(block.stamp);
    for (int w = 0; w < W; ++w) {
      const int j = offset + w;
      if (known.count(all_samples.sample_stamp(j))) continue;
      AppendProofBlock(entry, topo, all_samples, j, anc, desc);
      ++patch_ops;
    }
    entry->model.SetRhs(entry->budget_row,
                        request.energy_budget_mj - fixed_part);
    ++patch_ops;
    ctx.workspace->NoteLpPatch(patch_ops);
  }

  Result<lp::Solution> solved =
      ctx.workspace != nullptr
          ? ctx.workspace->SolveLp(entry, options_.simplex)
          : lp::SimplexSolver(options_.simplex).Solve(entry->model);
  if (!solved.ok()) return solved.status();
  last_stats_.lp = solved->stats;
  if (solved->status != lp::SolveStatus::kOptimal) {
    return Status::Internal(std::string("Proof LP solve failed: ") +
                            lp::ToString(solved->status));
  }
  last_lp_objective_ = solved->objective;

  // Round bandwidths half-up within [1, subtree size].
  std::vector<int> bw(n, 0);
  std::vector<double> frac(n, 0.0);
  for (int e = 1; e < n; ++e) {
    frac[e] = solved->values[entry->b[e]];
    bw[e] = std::clamp(static_cast<int>(std::floor(frac[e] + 0.5)), 1,
                       topo.subtree_size(e));
  }

  // Repair: trim the edges we rounded up the most until within budget.
  if (options_.repair_budget) {
    auto plan_cost = [&] {
      double cost = fixed_part;
      for (int e = 1; e < n; ++e) cost += bw[e] * ctx.EdgePerValueCost(e);
      return cost;
    };
    while (plan_cost() > request.energy_budget_mj) {
      int worst = -1;
      double worst_gap = -1.0;
      for (int e = 1; e < n; ++e) {
        if (bw[e] <= 1) continue;
        const double gap = bw[e] - frac[e];
        if (gap > worst_gap) {
          worst_gap = gap;
          worst = e;
        }
      }
      if (worst < 0) break;  // already at the floor everywhere
      --bw[worst];
    }
  }

  return QueryPlan::Bandwidth(request.k, std::move(bw), /*proof_carrying=*/true);
}

}  // namespace core
}  // namespace prospector
