#include "src/core/oracle.h"

#include <algorithm>

#include "src/core/reading.h"

namespace prospector {
namespace core {

QueryPlan MakeOraclePlan(const net::Topology& topology,
                         const std::vector<double>& truth, int k) {
  std::vector<char> chosen(topology.num_nodes(), 0);
  for (const Reading& r : TrueTopK(truth, k)) chosen[r.node] = 1;
  QueryPlan plan = QueryPlan::NodeSelection(k, std::move(chosen), topology);
  plan.Normalize(topology);
  return plan;
}

QueryPlan MakeOracleProofPlan(const net::Topology& topology,
                              const std::vector<double>& truth, int k) {
  std::vector<char> in_topk(topology.num_nodes(), 0);
  for (const Reading& r : TrueTopK(truth, k)) in_topk[r.node] = 1;

  // Count top-k members per subtree bottom-up.
  std::vector<int> members(topology.num_nodes(), 0);
  for (int u : topology.PostOrder()) {
    members[u] = in_topk[u] ? 1 : 0;
    for (int c : topology.children(u)) members[u] += members[c];
  }

  std::vector<int> bw(topology.num_nodes(), 0);
  for (int u = 1; u < topology.num_nodes(); ++u) {
    bw[u] = std::min(topology.subtree_size(u), members[u] + 1);
  }
  QueryPlan plan = QueryPlan::Bandwidth(k, std::move(bw), /*proof_carrying=*/true);
  plan.Normalize(topology);
  return plan;
}

}  // namespace core
}  // namespace prospector
