#ifndef PROSPECTOR_LP_KKT_H_
#define PROSPECTOR_LP_KKT_H_

#include "src/lp/model.h"
#include "src/lp/simplex.h"

namespace prospector {
namespace lp {

/// Independent optimality certificate: verifies the Karush-Kuhn-Tucker
/// conditions of a claimed optimal solution against the model, using only
/// the primal point, row duals and reduced costs — no solver internals.
/// Checks, within `tol`:
///   1. primal feasibility (rows and bounds);
///   2. dual feasibility: each row dual's sign matches its row type, each
///      reduced cost's sign is consistent with the variable's position
///      (no improving direction exists);
///   3. complementary slackness: nonzero duals only on tight rows,
///      nonzero reduced costs only on variables at a bound;
///   4. strong duality: c'x = y'b + d'x.
/// Returns OK when the certificate holds, FailedPrecondition describing
/// the first violation otherwise.
///
/// Used by the test suite to certify simplex results without trusting the
/// simplex, and available to callers who want belt-and-braces checking of
/// planner LPs.
Status VerifyKkt(const Model& model, const Solution& solution,
                 double tol = 1e-6);

}  // namespace lp
}  // namespace prospector

#endif  // PROSPECTOR_LP_KKT_H_
