#include "src/lp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/obs/obs.h"

namespace prospector {
namespace lp {
namespace {

struct BoundOverride {
  int var;
  double lower;
  double upper;
};

// One open subproblem: the cumulative bound tightenings along its path
// from the root, plus the parent relaxation's objective (a valid bound).
struct Node {
  std::vector<BoundOverride> overrides;
  double parent_bound;
};

Model WithOverrides(const Model& base, const std::vector<BoundOverride>& ovr) {
  std::vector<double> lo(base.num_variables()), up(base.num_variables());
  for (int j = 0; j < base.num_variables(); ++j) {
    lo[j] = base.variable(j).lower;
    up[j] = base.variable(j).upper;
  }
  for (const BoundOverride& o : ovr) {
    lo[o.var] = std::max(lo[o.var], o.lower);
    up[o.var] = std::min(up[o.var], o.upper);
  }
  Model rebuilt;
  rebuilt.SetSense(base.sense());
  for (int j = 0; j < base.num_variables(); ++j) {
    rebuilt.AddVariable(lo[j], up[j], base.variable(j).objective,
                        base.variable(j).name);
  }
  for (int r = 0; r < base.num_rows(); ++r) {
    const Row& row = base.row(r);
    rebuilt.AddRow(row.type, row.rhs, row.terms, row.name);
  }
  return rebuilt;
}

}  // namespace

Result<BnbResult> BranchAndBound::Solve(
    const Model& model, const std::vector<int>& integer_vars) const {
  PROSPECTOR_SPAN("lp.bnb_solve");
  PROSPECTOR_RETURN_IF_ERROR(model.Validate());
  for (int v : integer_vars) {
    if (v < 0 || v >= model.num_variables()) {
      return Status::InvalidArgument("integer variable index out of range");
    }
  }
  const bool maximize = model.sense() == Sense::kMaximize;
  auto better = [maximize](double a, double b) {
    return maximize ? a > b : a < b;
  };
  const double worst = maximize ? -kInfinity : kInfinity;

  SimplexSolver solver(options_.simplex);
  BnbResult result;
  result.objective = worst;
  bool have_incumbent = false;
  bool node_cap_hit = false;

  std::vector<Node> stack;
  stack.push_back({{}, maximize ? kInfinity : -kInfinity});

  while (!stack.empty()) {
    if (result.nodes_explored >= options_.max_nodes) {
      node_cap_hit = true;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    // Parent bound already dominated by the incumbent?
    if (have_incumbent &&
        !better(node.parent_bound,
                result.objective + (maximize ? options_.gap_tol
                                             : -options_.gap_tol))) {
      continue;
    }
    ++result.nodes_explored;

    const Model sub = WithOverrides(model, node.overrides);
    // Bound tightenings can invert bounds (floor < lower); treat as prune.
    bool invalid = false;
    for (int j = 0; j < sub.num_variables(); ++j) {
      if (sub.variable(j).lower > sub.variable(j).upper) invalid = true;
    }
    if (invalid) continue;

    auto relax = solver.Solve(sub);
    if (!relax.ok()) return relax.status();
    result.lp_stats.Accumulate(relax->stats);
    if (relax->status == SolveStatus::kInfeasible) continue;
    if (relax->status == SolveStatus::kUnbounded) {
      return Status::InvalidArgument(
          "relaxation unbounded; bound the integer variables");
    }
    if (relax->status != SolveStatus::kOptimal) {
      node_cap_hit = true;  // solver iteration limit: treat as unexplored
      continue;
    }
    if (have_incumbent &&
        !better(relax->objective, result.objective + (maximize
                                                          ? options_.gap_tol
                                                          : -options_.gap_tol))) {
      continue;  // bounded out
    }

    // Most fractional integer variable.
    int branch_var = -1;
    double worst_frac = options_.integrality_tol;
    for (int v : integer_vars) {
      const double x = relax->values[v];
      const double frac = std::abs(x - std::round(x));
      if (frac > worst_frac) {
        worst_frac = frac;
        branch_var = v;
      }
    }
    if (branch_var < 0) {
      // Integral: new incumbent.
      result.objective = relax->objective;
      result.values = relax->values;
      for (int v : integer_vars) result.values[v] = std::round(result.values[v]);
      have_incumbent = true;
      continue;
    }

    const double x = relax->values[branch_var];
    Node down{node.overrides, relax->objective};
    down.overrides.push_back({branch_var, -kInfinity, std::floor(x)});
    Node up{std::move(node.overrides), relax->objective};
    up.overrides.push_back({branch_var, std::ceil(x), kInfinity});
    // DFS: explore the side nearer the fractional value first (pushed
    // last) for quick incumbents.
    if (x - std::floor(x) > 0.5) {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    } else {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    }
  }

  if (node_cap_hit) {
    result.status = SolveStatus::kIterationLimit;
    result.best_bound = result.objective;
    for (const Node& open : stack) {
      if (better(open.parent_bound, result.best_bound)) {
        result.best_bound = open.parent_bound;
      }
    }
  } else if (have_incumbent) {
    result.status = SolveStatus::kOptimal;
    result.best_bound = result.objective;
  } else {
    result.status = SolveStatus::kInfeasible;
  }
  PROSPECTOR_COUNTER_ADD("lp.bnb_nodes", result.nodes_explored);
  return result;
}

}  // namespace lp
}  // namespace prospector
