#ifndef PROSPECTOR_LP_LP_WRITER_H_
#define PROSPECTOR_LP_LP_WRITER_H_

#include <string>

#include "src/lp/model.h"
#include "src/util/status.h"

namespace prospector {
namespace lp {

/// Serializes a model in CPLEX LP file format, the lingua franca of LP
/// debugging: the output loads into CPLEX/Gurobi/GLPK/SCIP unchanged, so a
/// planner-emitted program can be cross-checked against a reference solver
/// or inspected by hand. Variables without names are rendered as x<i>,
/// rows as r<i>.
std::string WriteLpString(const Model& model);

/// WriteLpString to a file.
Status WriteLpFile(const Model& model, const std::string& path);

}  // namespace lp
}  // namespace prospector

#endif  // PROSPECTOR_LP_LP_WRITER_H_
