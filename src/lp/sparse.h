#ifndef PROSPECTOR_LP_SPARSE_H_
#define PROSPECTOR_LP_SPARSE_H_

#include <cstddef>
#include <vector>

#include "src/lp/model.h"

namespace prospector {
namespace lp {

/// Column-major (CSC) sparse matrix. The planner LPs have one variable per
/// (sample, node) but only 2-3 nonzeros per row, so storing columns — the
/// access pattern of revised-simplex pricing (y · a_j) and FTRAN loads
/// (scatter a_j) — turns each per-pivot pass from O(rows·cols) into
/// O(nnz).
struct SparseColumns {
  int rows = 0;
  std::vector<int> start;     ///< size cols()+1; column j is [start[j], start[j+1])
  std::vector<int> row_idx;   ///< row index per entry, ascending within a column
  std::vector<double> value;  ///< coefficient per entry

  int cols() const { return static_cast<int>(start.size()) - 1; }
  size_t nnz() const { return row_idx.size(); }
};

/// Builds the equality-form column matrix of `model` in CSC form:
/// [structural | slacks | artificials]. Duplicate terms on one row are
/// summed (the dense assembler's `+=` rule); entries that sum to exactly
/// zero are dropped, which is equivalent to a stored 0.0. Slack columns
/// are the identity; `artificial_rows[a]` gives the row of artificial
/// column `num_variables + num_rows + a` (each is a +1 unit column, the
/// dense phase-1 construction).
SparseColumns BuildEqualityColumns(const Model& model,
                                   const std::vector<int>& artificial_rows);

}  // namespace lp
}  // namespace prospector

#endif  // PROSPECTOR_LP_SPARSE_H_
