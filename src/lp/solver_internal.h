#ifndef PROSPECTOR_LP_SOLVER_INTERNAL_H_
#define PROSPECTOR_LP_SOLVER_INTERNAL_H_

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/lp/model.h"
#include "src/lp/simplex.h"
#include "src/obs/obs.h"
#include "src/util/status.h"

// Shared between the dense-tableau solver (simplex.cc) and the sparse
// revised solver (revised_simplex.cc). Both implement the same
// bounded-variable method over the same equality form, so the variable
// status encoding, the initial resting rule, and the accounting hooks must
// be one definition — the Basis struct's documented 0/1/2/3 encoding is
// this enum.

namespace prospector {
namespace lp {
namespace internal {

enum class VarStatus : unsigned char {
  kBasic,
  kAtLower,
  kAtUpper,
  kFreeAtZero,
};

/// Initial resting status of a nonbasic column: the finite bound nearest
/// zero, or free-at-zero when both bounds are infinite. Both solvers (and
/// ExtendBasis) start appended variables exactly here, which is what keeps
/// cold, warm, hot, and revised runs comparable.
inline VarStatus InitialRestStatus(double lo, double up) {
  const bool lo_fin = lo != -kInfinity;
  const bool up_fin = up != kInfinity;
  if (lo_fin && up_fin) {
    return std::abs(lo) <= std::abs(up) ? VarStatus::kAtLower
                                        : VarStatus::kAtUpper;
  }
  if (lo_fin) return VarStatus::kAtLower;
  if (up_fin) return VarStatus::kAtUpper;
  return VarStatus::kFreeAtZero;
}

/// Every termination path (optimal, infeasible, limit) passes through here
/// so the registry sees all work done, not just successful solves.
inline void RecordSolveMetrics([[maybe_unused]] const Solution& sol) {
  PROSPECTOR_COUNTER_ADD("lp.solves", 1);
  PROSPECTOR_COUNTER_ADD("lp.rows", sol.stats.rows);
  PROSPECTOR_COUNTER_ADD("lp.columns", sol.stats.columns);
  PROSPECTOR_COUNTER_ADD("lp.artificials", sol.stats.artificials);
  PROSPECTOR_COUNTER_ADD("lp.phase1_pivots", sol.stats.phase1_iterations);
  PROSPECTOR_COUNTER_ADD("lp.phase2_pivots", sol.stats.phase2_iterations);
  PROSPECTOR_COUNTER_ADD("lp.blands_activations", sol.stats.blands_activations);
}

/// Max bound/row violation of `values` re-checked against the original
/// model — the Solution::primal_residual health indicator, shared so every
/// engine scores itself with the same yardstick.
inline double ComputePrimalResidual(const Model& model,
                                    const std::vector<double>& values) {
  double resid = 0.0;
  for (int j = 0; j < model.num_variables(); ++j) {
    resid = std::max(resid, model.variable(j).lower - values[j]);
    resid = std::max(resid, values[j] - model.variable(j).upper);
  }
  for (int i = 0; i < model.num_rows(); ++i) {
    const Row& row = model.row(i);
    double lhs = 0.0;
    for (const Term& t : row.terms) lhs += t.coeff * values[t.var];
    switch (row.type) {
      case RowType::kLessEqual: resid = std::max(resid, lhs - row.rhs); break;
      case RowType::kGreaterEqual: resid = std::max(resid, row.rhs - lhs); break;
      case RowType::kEqual: resid = std::max(resid, std::abs(lhs - row.rhs)); break;
    }
  }
  return std::max(resid, 0.0);
}

/// Resolves SimplexAlgorithm::kAuto for a concrete model. The dense
/// tableau wins when its working set is small or the constraint matrix is
/// dense enough that vectorized row sweeps beat indexed gathers; the
/// planners' programs (well under 1% dense, thousands of rows) go to the
/// revised engine. Depends only on the model, never on ambient state, so
/// every component solving the same model picks the same engine.
inline SimplexAlgorithm ResolveAutoAlgorithm(const Model& model) {
  const size_t m = static_cast<size_t>(model.num_rows());
  const size_t cells = m * (static_cast<size_t>(model.num_variables()) + m);
  if (cells <= 4096) return SimplexAlgorithm::kDense;
  size_t nnz = m;  // one slack per row
  for (int i = 0; i < model.num_rows(); ++i) nnz += model.row(i).terms.size();
  return nnz * 20 >= cells ? SimplexAlgorithm::kDense
                           : SimplexAlgorithm::kRevised;
}

/// The dense-tableau size guard, applied to every solve regardless of
/// algorithm: the dense oracle must stay runnable for cross-checks, so a
/// model too big to dense-solve is refused up front instead of passing in
/// one mode and aborting in another.
inline Status CheckTableauBudget(const Model& model, size_t max_bytes) {
  const size_t m = static_cast<size_t>(model.num_rows());
  const size_t cells = m * (model.num_variables() + m);
  if (cells * 2 * sizeof(double) > max_bytes) {
    return Status::ResourceExhausted(
        "LP of " + std::to_string(model.num_rows()) + " rows x " +
        std::to_string(model.num_variables() + model.num_rows()) +
        " columns exceeds the dense-tableau memory limit; shrink the "
        "model (e.g. fewer samples) or raise max_tableau_bytes");
  }
  return Status::OK();
}

}  // namespace internal
}  // namespace lp
}  // namespace prospector

#endif  // PROSPECTOR_LP_SOLVER_INTERNAL_H_
