#ifndef PROSPECTOR_LP_VECTOR_EMIT_H_
#define PROSPECTOR_LP_VECTOR_EMIT_H_

#include "src/lp/model.h"
#include "src/lp/simplex.h"
#include "src/testvec/json.h"
#include "src/util/status.h"

namespace prospector {
namespace lp {

/// JSON emission/loading of LP models and solutions for the golden
/// test-vector corpus (spec/test-vectors/lp_*.json). A stored optimum is
/// only trustworthy together with its KKT certificate (row duals +
/// reduced costs), which VerifyKkt can check against the model without
/// trusting any solver — that pair is what makes an LP vector "truth"
/// rather than "whatever the simplex said the day it was generated".
///
/// Schema:
///   model: { "sense": "minimize"|"maximize",
///            "variables": [ {"lower", "upper", "objective", "name"?} ],
///            "rows": [ {"type": "<="|">="|"=", "rhs",
///                       "terms": [[var, coeff], ...], "name"?} ] }
///   Infinite bounds spell as the strings "inf" / "-inf" (JSON has no
///   infinity literal).
///   solution: { "status": "optimal"|"infeasible"|"unbounded",
///               "objective", "values": [...],
///               "row_duals": [...], "reduced_costs": [...] }
///   (the three arrays are present for optimal solutions only).
testvec::Json ModelToJson(const Model& model);
Result<Model> ModelFromJson(const testvec::Json& j);

testvec::Json SolutionToJson(const Solution& solution);
/// Loads the solution fields the corpus stores (status, objective, primal
/// point, KKT certificate); solver-internal fields stay default.
Result<Solution> SolutionFromJson(const testvec::Json& j);

}  // namespace lp
}  // namespace prospector

#endif  // PROSPECTOR_LP_VECTOR_EMIT_H_
