#include "src/lp/sparse.h"

namespace prospector {
namespace lp {

SparseColumns BuildEqualityColumns(const Model& model,
                                   const std::vector<int>& artificial_rows) {
  const int nstruct = model.num_variables();
  const int m = model.num_rows();
  const int nart = static_cast<int>(artificial_rows.size());
  const int ncols = nstruct + m + nart;

  SparseColumns a;
  a.rows = m;
  a.start.assign(ncols + 1, 0);

  // Counting pass (duplicates counted; merged below).
  for (int i = 0; i < m; ++i) {
    for (const Term& t : model.row(i).terms) ++a.start[t.var + 1];
  }
  for (int i = 0; i < m; ++i) ++a.start[nstruct + i + 1];  // slacks
  for (int k = 0; k < nart; ++k) ++a.start[nstruct + m + k + 1];
  for (int j = 0; j < ncols; ++j) a.start[j + 1] += a.start[j];

  a.row_idx.resize(a.start[ncols]);
  a.value.resize(a.start[ncols]);
  std::vector<int> cursor(a.start.begin(), a.start.end() - 1);
  // Row-major fill keeps each column's entries sorted by row, with any
  // duplicate terms of one row adjacent.
  for (int i = 0; i < m; ++i) {
    for (const Term& t : model.row(i).terms) {
      const int p = cursor[t.var]++;
      a.row_idx[p] = i;
      a.value[p] = t.coeff;
    }
  }
  for (int i = 0; i < m; ++i) {
    const int p = cursor[nstruct + i]++;
    a.row_idx[p] = i;
    a.value[p] = 1.0;
  }
  for (int k = 0; k < nart; ++k) {
    const int p = cursor[nstruct + m + k]++;
    a.row_idx[p] = artificial_rows[k];
    a.value[p] = 1.0;
  }

  // Merge duplicate (row, col) entries — same `+=` semantics as the dense
  // assembler — and drop exact-zero sums in place.
  size_t out = 0;
  int prev_end = 0;
  for (int j = 0; j < ncols; ++j) {
    const int end = a.start[j + 1];
    int p = prev_end;
    prev_end = end;
    const size_t col_begin = out;
    while (p < end) {
      const int row = a.row_idx[p];
      double sum = a.value[p++];
      while (p < end && a.row_idx[p] == row) sum += a.value[p++];
      if (sum != 0.0) {
        a.row_idx[out] = row;
        a.value[out] = sum;
        ++out;
      }
    }
    a.start[j] = static_cast<int>(col_begin);
    a.start[j + 1] = static_cast<int>(out);
  }
  a.row_idx.resize(out);
  a.value.resize(out);
  return a;
}

}  // namespace lp
}  // namespace prospector
