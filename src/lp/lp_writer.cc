#include "src/lp/lp_writer.h"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

namespace prospector {
namespace lp {
namespace {

std::string VarName(const Model& model, int j) {
  const std::string& name = model.variable(j).name;
  return name.empty() ? "x" + std::to_string(j) : name;
}

void AppendNumber(std::ostringstream* os, double v) {
  // LP format dislikes exponents like 1e-05 in some readers; print plainly.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  *os << buf;
}

void AppendExpression(std::ostringstream* os, const Model& model,
                      const std::vector<Term>& terms) {
  // Merge duplicate terms first, as the solver does.
  std::map<int, double> merged;
  for (const Term& t : terms) merged[t.var] += t.coeff;
  bool first = true;
  for (const auto& [var, coeff] : merged) {
    if (coeff == 0.0) continue;
    if (first) {
      if (coeff < 0) *os << "- ";
      first = false;
    } else {
      *os << (coeff < 0 ? " - " : " + ");
    }
    const double mag = std::abs(coeff);
    if (mag != 1.0) {
      AppendNumber(os, mag);
      *os << ' ';
    }
    *os << VarName(model, var);
  }
  if (first) *os << "0 " << VarName(model, 0);  // empty expression guard
}

}  // namespace

std::string WriteLpString(const Model& model) {
  std::ostringstream os;
  os << (model.sense() == Sense::kMaximize ? "Maximize" : "Minimize") << "\n";
  {
    std::vector<Term> obj;
    for (int j = 0; j < model.num_variables(); ++j) {
      if (model.variable(j).objective != 0.0) {
        obj.push_back({j, model.variable(j).objective});
      }
    }
    os << " obj: ";
    AppendExpression(&os, model, obj);
    os << "\n";
  }
  os << "Subject To\n";
  for (int r = 0; r < model.num_rows(); ++r) {
    const Row& row = model.row(r);
    os << ' ' << (row.name.empty() ? "r" + std::to_string(r) : row.name)
       << ": ";
    AppendExpression(&os, model, row.terms);
    switch (row.type) {
      case RowType::kLessEqual: os << " <= "; break;
      case RowType::kGreaterEqual: os << " >= "; break;
      case RowType::kEqual: os << " = "; break;
    }
    AppendNumber(&os, row.rhs);
    os << "\n";
  }
  os << "Bounds\n";
  for (int j = 0; j < model.num_variables(); ++j) {
    const Variable& v = model.variable(j);
    const bool lo_fin = v.lower != -kInfinity;
    const bool up_fin = v.upper != kInfinity;
    os << ' ';
    if (!lo_fin && !up_fin) {
      os << VarName(model, j) << " free";
    } else if (lo_fin && up_fin && v.lower == v.upper) {
      os << VarName(model, j) << " = ";
      AppendNumber(&os, v.lower);
    } else {
      if (lo_fin) {
        AppendNumber(&os, v.lower);
        os << " <= ";
      } else {
        os << "-inf <= ";
      }
      os << VarName(model, j);
      if (up_fin) {
        os << " <= ";
        AppendNumber(&os, v.upper);
      }
    }
    os << "\n";
  }
  os << "End\n";
  return os.str();
}

Status WriteLpFile(const Model& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << WriteLpString(model);
  return out.good() ? Status::OK() : Status::Internal("write failed: " + path);
}

}  // namespace lp
}  // namespace prospector
