#ifndef PROSPECTOR_LP_MODEL_H_
#define PROSPECTOR_LP_MODEL_H_

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace prospector {
namespace lp {

/// Direction of optimization.
enum class Sense { kMinimize, kMaximize };

/// Relational operator of a linear constraint row.
enum class RowType { kLessEqual, kGreaterEqual, kEqual };

/// Positive/negative infinity markers for variable bounds.
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// One term of a linear expression: coeff * var.
struct Term {
  int var = -1;
  double coeff = 0.0;
};

/// Description of a decision variable.
struct Variable {
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
  std::string name;
};

/// Description of a linear constraint  sum(terms) <relop> rhs.
struct Row {
  RowType type = RowType::kLessEqual;
  double rhs = 0.0;
  std::vector<Term> terms;
  std::string name;
};

/// A linear program:
///
///   min/max  sum_i objective_i * x_i
///   s.t.     each Row holds,
///            lower_i <= x_i <= upper_i.
///
/// The model is a plain builder; it performs no solving. Duplicate terms on
/// the same variable within one row are summed by the solver. Variables are
/// identified by the dense index returned from AddVariable().
class Model {
 public:
  /// Adds a variable with bounds [lower, upper] and the given objective
  /// coefficient. Returns its index.
  int AddVariable(double lower, double upper, double objective,
                  std::string name = "") {
    variables_.push_back(Variable{lower, upper, objective, std::move(name)});
    return static_cast<int>(variables_.size()) - 1;
  }

  /// Convenience: a [0, 1] variable (linear relaxation of a 0/1 decision).
  int AddBinaryRelaxed(double objective, std::string name = "") {
    return AddVariable(0.0, 1.0, objective, std::move(name));
  }

  /// Adds the constraint sum(terms) <type> rhs. Returns the row index.
  int AddRow(RowType type, double rhs, std::vector<Term> terms,
             std::string name = "") {
    rows_.push_back(Row{type, rhs, std::move(terms), std::move(name)});
    return static_cast<int>(rows_.size()) - 1;
  }

  void SetSense(Sense sense) { sense_ = sense; }
  Sense sense() const { return sense_; }

  // --- In-place patching (incremental re-optimization) -------------------
  // A cached model can be re-pointed at drifted data — new sample column
  // sums in the objective, a new budget on a constraint's RHS, a variable
  // tombstoned by fixing its bounds — without rebuilding rows. Patching
  // only coefficients keeps row/variable order identical to a from-scratch
  // build, which is what makes cached-model solves reproducible.

  /// Replaces variable i's objective coefficient.
  void SetObjective(int var, double objective) {
    variables_[var].objective = objective;
  }
  /// Replaces variable i's bounds. Fixing to [0, 0] retires the variable:
  /// the solver never lets a fixed column enter the basis, so its rows
  /// degenerate to constraints among the remaining variables.
  void SetBounds(int var, double lower, double upper) {
    variables_[var].lower = lower;
    variables_[var].upper = upper;
  }
  /// Replaces row r's right-hand side.
  void SetRhs(int row, double rhs) { rows_[row].rhs = rhs; }
  /// Appends a term to an existing row — incremental model growth, e.g. a
  /// newly created edge variable joining the shared budget constraint.
  void AddRowTerm(int row, Term term) { rows_[row].terms.push_back(term); }

  int num_variables() const { return static_cast<int>(variables_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }

  const Variable& variable(int i) const { return variables_[i]; }
  const Row& row(int i) const { return rows_[i]; }
  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Checks structural sanity: term indices in range, lower <= upper, finite
  /// objective coefficients and RHS values.
  Status Validate() const {
    for (int i = 0; i < num_variables(); ++i) {
      const Variable& v = variables_[i];
      if (v.lower > v.upper) {
        return Status::InvalidArgument("variable " + std::to_string(i) +
                                       " has lower > upper");
      }
      if (!std::isfinite(v.objective)) {
        return Status::InvalidArgument("variable " + std::to_string(i) +
                                       " has non-finite objective");
      }
    }
    for (int r = 0; r < num_rows(); ++r) {
      if (!std::isfinite(rows_[r].rhs)) {
        return Status::InvalidArgument("row " + std::to_string(r) +
                                       " has non-finite rhs");
      }
      for (const Term& t : rows_[r].terms) {
        if (t.var < 0 || t.var >= num_variables()) {
          return Status::InvalidArgument("row " + std::to_string(r) +
                                         " references unknown variable " +
                                         std::to_string(t.var));
        }
        if (!std::isfinite(t.coeff)) {
          return Status::InvalidArgument("row " + std::to_string(r) +
                                         " has non-finite coefficient");
        }
      }
    }
    return Status::OK();
  }

  /// Evaluates the objective at the given point.
  double ObjectiveValue(const std::vector<double>& x) const {
    double v = 0.0;
    for (int i = 0; i < num_variables(); ++i) v += variables_[i].objective * x[i];
    return v;
  }

  /// Returns true if `x` satisfies every row and bound within `tol`.
  bool IsFeasible(const std::vector<double>& x, double tol = 1e-6) const {
    if (static_cast<int>(x.size()) != num_variables()) return false;
    for (int i = 0; i < num_variables(); ++i) {
      if (x[i] < variables_[i].lower - tol) return false;
      if (x[i] > variables_[i].upper + tol) return false;
    }
    for (const Row& row : rows_) {
      double lhs = 0.0;
      for (const Term& t : row.terms) lhs += t.coeff * x[t.var];
      switch (row.type) {
        case RowType::kLessEqual:
          if (lhs > row.rhs + tol) return false;
          break;
        case RowType::kGreaterEqual:
          if (lhs < row.rhs - tol) return false;
          break;
        case RowType::kEqual:
          if (std::abs(lhs - row.rhs) > tol) return false;
          break;
      }
    }
    return true;
  }

 private:
  Sense sense_ = Sense::kMinimize;
  std::vector<Variable> variables_;
  std::vector<Row> rows_;
};

}  // namespace lp
}  // namespace prospector

#endif  // PROSPECTOR_LP_MODEL_H_
