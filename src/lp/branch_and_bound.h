#ifndef PROSPECTOR_LP_BRANCH_AND_BOUND_H_
#define PROSPECTOR_LP_BRANCH_AND_BOUND_H_

#include <vector>

#include "src/lp/model.h"
#include "src/lp/simplex.h"

namespace prospector {
namespace lp {

/// Options for the integer solver.
struct BnbOptions {
  SimplexOptions simplex;
  /// Hard cap on explored branch-and-bound nodes.
  int max_nodes = 200000;
  /// |x - round(x)| below this counts as integral.
  double integrality_tol = 1e-6;
  /// Prune when a relaxation cannot beat the incumbent by more than this.
  double gap_tol = 1e-9;
};

/// Result of an integer solve.
struct BnbResult {
  /// kOptimal: proven integer optimum. kIterationLimit: node cap hit (the
  /// incumbent, if any, is in `values` but unproven). kInfeasible: no
  /// integral point exists.
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> values;
  int nodes_explored = 0;
  /// Best relaxation bound at termination (equals objective when optimal).
  double best_bound = 0.0;
  /// Simplex work summed over every node relaxation solved.
  SolveStats lp_stats;
};

/// Branch-and-bound over the bounded-variable simplex: LP-based bounding,
/// most-fractional branching, depth-first exploration.
///
/// The paper relaxes its 0/1 programs and rounds (Section 4.1, including
/// the footnote noting the KNAPSACK-hardness of the integral problem);
/// this solver recovers true integer optima on small instances so the
/// rounding gap can be measured (see bench_ilp_gap). It is exact but
/// exponential — intended for #integer variables in the dozens.
class BranchAndBound {
 public:
  explicit BranchAndBound(BnbOptions options = {}) : options_(options) {}

  /// `integer_vars`: the variables required to take integral values
  /// (bounds stay as modeled; a [0,1] variable becomes a true binary).
  Result<BnbResult> Solve(const Model& model,
                          const std::vector<int>& integer_vars) const;

 private:
  BnbOptions options_;
};

}  // namespace lp
}  // namespace prospector

#endif  // PROSPECTOR_LP_BRANCH_AND_BOUND_H_
