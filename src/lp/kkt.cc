#include "src/lp/kkt.h"

#include <cmath>
#include <string>
#include <vector>

namespace prospector {
namespace lp {
namespace {

std::string RowLabel(const Model& model, int r) {
  const std::string& name = model.row(r).name;
  return name.empty() ? "row " + std::to_string(r) : name;
}

}  // namespace

Status VerifyKkt(const Model& model, const Solution& solution, double tol) {
  if (solution.status != SolveStatus::kOptimal) {
    return Status::FailedPrecondition("solution is not marked optimal");
  }
  const int n = model.num_variables();
  const int m = model.num_rows();
  if (static_cast<int>(solution.values.size()) != n ||
      static_cast<int>(solution.row_duals.size()) != m ||
      static_cast<int>(solution.reduced_costs.size()) != n) {
    return Status::InvalidArgument("solution arrays do not match the model");
  }
  const std::vector<double>& x = solution.values;
  const bool maximize = model.sense() == Sense::kMaximize;
  // Normalize dual/reduced-cost signs to the minimization convention so a
  // single set of inequalities applies.
  auto y_min = [&](int r) {
    return maximize ? -solution.row_duals[r] : solution.row_duals[r];
  };
  auto d_min = [&](int j) {
    const double d = solution.reduced_costs[j];
    return maximize ? -d : d;
  };

  // 1. Primal feasibility + row slacks.
  std::vector<double> slack(m);
  for (int j = 0; j < n; ++j) {
    const Variable& v = model.variable(j);
    if (x[j] < v.lower - tol || x[j] > v.upper + tol) {
      return Status::FailedPrecondition("variable " + std::to_string(j) +
                                        " violates its bounds");
    }
  }
  for (int r = 0; r < m; ++r) {
    const Row& row = model.row(r);
    double lhs = 0.0;
    for (const Term& t : row.terms) lhs += t.coeff * x[t.var];
    slack[r] = row.rhs - lhs;
    const bool ok = row.type == RowType::kLessEqual  ? slack[r] >= -tol
                    : row.type == RowType::kGreaterEqual ? slack[r] <= tol
                                                         : std::abs(slack[r]) <= tol;
    if (!ok) {
      return Status::FailedPrecondition(RowLabel(model, r) + " is violated");
    }
  }

  // 2+3. Dual feasibility and complementary slackness on rows. In the
  // minimization convention, a <= row has y <= 0 and a >= row has y >= 0
  // (with slack +1 columns: c_slack - y*1 must be dually feasible given
  // the slack's bounds), and a nonzero dual requires a tight row.
  for (int r = 0; r < m; ++r) {
    const double y = y_min(r);
    const RowType type = model.row(r).type;
    if (type == RowType::kLessEqual && y > tol) {
      return Status::FailedPrecondition(RowLabel(model, r) +
                                        " has a wrong-signed dual");
    }
    if (type == RowType::kGreaterEqual && y < -tol) {
      return Status::FailedPrecondition(RowLabel(model, r) +
                                        " has a wrong-signed dual");
    }
    if (std::abs(y) > tol && std::abs(slack[r]) > tol) {
      return Status::FailedPrecondition(RowLabel(model, r) +
                                        " has a nonzero dual but slack");
    }
  }

  // 2+3. Reduced costs: d = c - A^T y must vanish off the bounds, be >= 0
  // at the lower bound and <= 0 at the upper (minimization convention);
  // also re-derive d from y to catch inconsistent certificates.
  std::vector<double> derived(n);
  for (int j = 0; j < n; ++j) {
    derived[j] = maximize ? -model.variable(j).objective
                          : model.variable(j).objective;
  }
  for (int r = 0; r < m; ++r) {
    const double y = y_min(r);
    if (y == 0.0) continue;
    for (const Term& t : model.row(r).terms) derived[t.var] -= y * t.coeff;
  }
  for (int j = 0; j < n; ++j) {
    const double d = d_min(j);
    if (std::abs(d - derived[j]) > 1e-4 + tol) {
      return Status::FailedPrecondition(
          "reduced cost of variable " + std::to_string(j) +
          " is inconsistent with the row duals");
    }
    const Variable& v = model.variable(j);
    const bool at_lower = x[j] <= v.lower + tol;
    const bool at_upper = x[j] >= v.upper - tol;
    if (at_lower && at_upper) continue;  // fixed variable: any d
    if (at_lower) {
      if (d < -tol) {
        return Status::FailedPrecondition(
            "variable " + std::to_string(j) +
            " could improve by leaving its lower bound");
      }
    } else if (at_upper) {
      if (d > tol) {
        return Status::FailedPrecondition(
            "variable " + std::to_string(j) +
            " could improve by leaving its upper bound");
      }
    } else if (std::abs(d) > tol) {
      return Status::FailedPrecondition("interior variable " +
                                        std::to_string(j) +
                                        " has a nonzero reduced cost");
    }
  }

  // 4. Strong duality: c'x = y'b + d'x (in the model's own sense both
  // sides flip together, so check as stated).
  double primal = model.ObjectiveValue(x);
  double dual = 0.0;
  for (int r = 0; r < m; ++r) dual += solution.row_duals[r] * model.row(r).rhs;
  for (int j = 0; j < n; ++j) dual += solution.reduced_costs[j] * x[j];
  if (std::abs(primal - dual) > 1e-4 + tol * (1.0 + std::abs(primal))) {
    return Status::FailedPrecondition(
        "duality gap: primal " + std::to_string(primal) + " vs dual " +
        std::to_string(dual));
  }
  return Status::OK();
}

}  // namespace lp
}  // namespace prospector
