#include "src/lp/vector_emit.h"

#include <cmath>
#include <string>

namespace prospector {
namespace lp {
namespace {

using testvec::Json;

Json BoundToJson(double b) {
  if (b == kInfinity) return Json("inf");
  if (b == -kInfinity) return Json("-inf");
  return Json(b);
}

Result<double> BoundFromJson(const Json& j, const char* what) {
  if (j.is_number()) return j.number();
  if (j.is_string()) {
    if (j.str() == "inf") return kInfinity;
    if (j.str() == "-inf") return -kInfinity;
  }
  return Status::InvalidArgument(std::string("lp vector: bad ") + what);
}

Result<std::vector<double>> DoubleArray(const Json& j, const char* what) {
  if (!j.is_array()) {
    return Status::InvalidArgument(std::string("lp vector: ") + what +
                                   " is not an array");
  }
  std::vector<double> out;
  out.reserve(j.size());
  for (size_t i = 0; i < j.size(); ++i) {
    if (!j[i].is_number()) {
      return Status::InvalidArgument(std::string("lp vector: ") + what +
                                     " holds a non-number");
    }
    out.push_back(j[i].number());
  }
  return out;
}

const char* RowTypeName(RowType t) {
  switch (t) {
    case RowType::kLessEqual: return "<=";
    case RowType::kGreaterEqual: return ">=";
    case RowType::kEqual: return "=";
  }
  return "?";
}

const char* StatusName(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
  }
  return "?";
}

}  // namespace

Json ModelToJson(const Model& model) {
  Json j = Json::Object();
  j.Set("sense",
        model.sense() == Sense::kMinimize ? "minimize" : "maximize");
  Json vars = Json::Array();
  for (const Variable& v : model.variables()) {
    Json jv = Json::Object();
    jv.Set("lower", BoundToJson(v.lower));
    jv.Set("upper", BoundToJson(v.upper));
    jv.Set("objective", v.objective);
    if (!v.name.empty()) jv.Set("name", v.name);
    vars.Append(std::move(jv));
  }
  j.Set("variables", std::move(vars));
  Json rows = Json::Array();
  for (const Row& r : model.rows()) {
    Json jr = Json::Object();
    jr.Set("type", RowTypeName(r.type));
    jr.Set("rhs", r.rhs);
    Json terms = Json::Array();
    for (const Term& t : r.terms) {
      Json term = Json::Array();
      term.Append(t.var);
      term.Append(t.coeff);
      terms.Append(std::move(term));
    }
    jr.Set("terms", std::move(terms));
    if (!r.name.empty()) jr.Set("name", r.name);
    rows.Append(std::move(jr));
  }
  j.Set("rows", std::move(rows));
  return j;
}

Result<Model> ModelFromJson(const Json& j) {
  if (!j.is_object()) {
    return Status::InvalidArgument("lp vector: model is not an object");
  }
  Model model;
  const Json& sense = j.at("sense");
  if (!sense.is_string() ||
      (sense.str() != "minimize" && sense.str() != "maximize")) {
    return Status::InvalidArgument("lp vector: bad sense");
  }
  model.SetSense(sense.str() == "minimize" ? Sense::kMinimize
                                           : Sense::kMaximize);
  const Json& vars = j.at("variables");
  if (!vars.is_array()) {
    return Status::InvalidArgument("lp vector: variables is not an array");
  }
  for (size_t i = 0; i < vars.size(); ++i) {
    const Json& v = vars[i];
    if (!v.is_object() || !v.at("objective").is_number()) {
      return Status::InvalidArgument("lp vector: bad variable " +
                                     std::to_string(i));
    }
    auto lower = BoundFromJson(v.at("lower"), "variable lower bound");
    if (!lower.ok()) return lower.status();
    auto upper = BoundFromJson(v.at("upper"), "variable upper bound");
    if (!upper.ok()) return upper.status();
    const Json* name = v.Find("name");
    model.AddVariable(*lower, *upper, v.at("objective").number(),
                      name != nullptr && name->is_string() ? name->str() : "");
  }
  const Json& rows = j.at("rows");
  if (!rows.is_array()) {
    return Status::InvalidArgument("lp vector: rows is not an array");
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    const Json& r = rows[i];
    const std::string err = "lp vector: bad row " + std::to_string(i);
    if (!r.is_object() || !r.at("type").is_string() ||
        !r.at("rhs").is_number() || !r.at("terms").is_array()) {
      return Status::InvalidArgument(err);
    }
    RowType type;
    if (r.at("type").str() == "<=") type = RowType::kLessEqual;
    else if (r.at("type").str() == ">=") type = RowType::kGreaterEqual;
    else if (r.at("type").str() == "=") type = RowType::kEqual;
    else return Status::InvalidArgument(err + ": unknown type");
    std::vector<Term> terms;
    const Json& jterms = r.at("terms");
    for (size_t t = 0; t < jterms.size(); ++t) {
      const Json& term = jterms[t];
      if (!term.is_array() || term.size() != 2 || !term[0].is_number() ||
          !term[1].is_number()) {
        return Status::InvalidArgument(err + ": bad term");
      }
      terms.push_back(Term{term[0].AsInt(), term[1].number()});
    }
    const Json* name = r.Find("name");
    model.AddRow(type, r.at("rhs").number(), std::move(terms),
                 name != nullptr && name->is_string() ? name->str() : "");
  }
  PROSPECTOR_RETURN_IF_ERROR(model.Validate());
  return model;
}

Json SolutionToJson(const Solution& solution) {
  Json j = Json::Object();
  j.Set("status", StatusName(solution.status));
  if (solution.status != SolveStatus::kOptimal) return j;
  j.Set("objective", solution.objective);
  auto emit = [&j](const char* key, const std::vector<double>& v) {
    Json arr = Json::Array();
    for (const double x : v) arr.Append(x);
    j.Set(key, std::move(arr));
  };
  emit("values", solution.values);
  emit("row_duals", solution.row_duals);
  emit("reduced_costs", solution.reduced_costs);
  return j;
}

Result<Solution> SolutionFromJson(const Json& j) {
  if (!j.is_object() || !j.at("status").is_string()) {
    return Status::InvalidArgument("lp vector: bad solution object");
  }
  Solution s;
  const std::string& name = j.at("status").str();
  if (name == "optimal") s.status = SolveStatus::kOptimal;
  else if (name == "infeasible") s.status = SolveStatus::kInfeasible;
  else if (name == "unbounded") s.status = SolveStatus::kUnbounded;
  else if (name == "iteration-limit") s.status = SolveStatus::kIterationLimit;
  else return Status::InvalidArgument("lp vector: unknown solve status");
  if (s.status != SolveStatus::kOptimal) return s;
  if (!j.at("objective").is_number()) {
    return Status::InvalidArgument("lp vector: optimal solution lacks "
                                   "objective");
  }
  s.objective = j.at("objective").number();
  auto values = DoubleArray(j.at("values"), "values");
  if (!values.ok()) return values.status();
  s.values = *values;
  auto duals = DoubleArray(j.at("row_duals"), "row_duals");
  if (!duals.ok()) return duals.status();
  s.row_duals = *duals;
  auto reduced = DoubleArray(j.at("reduced_costs"), "reduced_costs");
  if (!reduced.ok()) return reduced.status();
  s.reduced_costs = *reduced;
  return s;
}

}  // namespace lp
}  // namespace prospector
