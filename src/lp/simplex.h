#ifndef PROSPECTOR_LP_SIMPLEX_H_
#define PROSPECTOR_LP_SIMPLEX_H_

#include <memory>
#include <string>
#include <vector>

#include "src/lp/model.h"
#include "src/util/status.h"

namespace prospector {
namespace lp {

namespace internal {
struct Tableau;
}  // namespace internal

/// Termination state of a solve.
enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

inline const char* ToString(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
  }
  return "unknown";
}

/// Per-solve work accounting. Counts are deterministic — two solves of the
/// same model always pivot identically — so they can feed the metrics
/// registry without breaking the bit-identical-snapshot contract.
struct SolveStats {
  int phase1_iterations = 0;  ///< pivots spent finding a feasible basis
  int phase2_iterations = 0;  ///< pivots spent optimizing
  /// Times Dantzig pricing stalled past the threshold and the solver fell
  /// back to Bland's rule (anti-cycling). Persistently nonzero values on
  /// planner LPs signal degenerate models worth re-formulating.
  int blands_activations = 0;
  int rows = 0;         ///< constraint rows in the model
  int columns = 0;      ///< structural variables
  int artificials = 0;  ///< phase-1 artificial variables introduced

  int total_iterations() const { return phase1_iterations + phase2_iterations; }

  void Accumulate(const SolveStats& other) {
    phase1_iterations += other.phase1_iterations;
    phase2_iterations += other.phase2_iterations;
    blands_activations += other.blands_activations;
    rows += other.rows;
    columns += other.columns;
    artificials += other.artificials;
  }
};

/// A snapshot of the simplex basis at optimality, reusable to warm-start a
/// later solve of a drifted model (same constraint matrix; objective,
/// bounds, and RHS may have changed). `status` covers structural variables
/// then one slack per row, using the solver's internal encoding: 0 basic,
/// 1 at lower bound, 2 at upper bound, 3 free-at-zero. `basic` holds the
/// column basic in each row. A default-constructed Basis is "no basis":
/// SolveWarm treats it as a request for a cold solve.
struct Basis {
  int num_structural = 0;
  int num_rows = 0;
  std::vector<int> basic;             ///< size num_rows
  std::vector<unsigned char> status;  ///< size num_structural + num_rows
  bool empty() const { return basic.empty(); }
};

/// Retained dense solver state: the final tableau (B^-1 A, basis, and
/// variable statuses) of the last optimal solve. SolveHot re-optimizes a
/// patched or grown model directly from it — no refactorization at all —
/// where a basis-only warm start (SolveWarm) must first rebuild B^-1 with
/// an O(m^2 · n) Gauss-Jordan pass that often costs as much as the cold
/// solve it replaces. Move-only; treat it as an opaque cache slot tied to
/// one model lineage. A default-constructed (or Clear()-ed) state makes
/// SolveHot solve cold and repopulate it.
class TableauState {
 public:
  TableauState();
  ~TableauState();
  TableauState(TableauState&&) noexcept;
  TableauState& operator=(TableauState&&) noexcept;
  TableauState(const TableauState&) = delete;
  TableauState& operator=(const TableauState&) = delete;

  bool empty() const { return tab_ == nullptr; }
  void Clear();

 private:
  friend class SimplexSolver;
  std::unique_ptr<internal::Tableau> tab_;
};

/// Solver output. `values` holds the primal point for the model's
/// structural variables (only meaningful when status == kOptimal).
struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> values;
  /// Dual value (shadow price) per row, in the sign convention of the
  /// model's own sense: the objective's improvement per unit of RHS slack.
  /// For a <= row of a maximization this is >= 0.
  std::vector<double> row_duals;
  /// Reduced cost per structural variable (same sign convention).
  std::vector<double> reduced_costs;
  SolveStats stats;
  /// Max bound/row violation of the returned point, as re-checked against
  /// the original model (a numerical health indicator).
  double primal_residual = 0.0;
  /// Final basis, captured when the solve ended optimal with no artificial
  /// column left basic (empty otherwise). Feed to SolveWarm to
  /// re-optimize a patched model from here.
  Basis basis;
  /// True when this solution came from a successful warm start (basis
  /// restored, phase-2 pivots only).
  bool warm_started = false;
};

/// Which engine a cold Solve() runs. Both implement the same two-phase
/// bounded-variable method with the same pricing, ratio-test, and
/// anti-cycling rules; they differ only in how the basis inverse is
/// carried (sparse product-form factorization vs explicit dense tableau).
enum class SimplexAlgorithm {
  /// Pick per model (default): the dense tableau for small or dense
  /// constraint matrices, where its vectorized row operations beat the
  /// revised engine's indexed gathers, and the revised engine for the
  /// large sparse programs the planners actually emit. The choice is a
  /// pure function of the model, so pipelines stay deterministic.
  kAuto,
  /// Sparse revised simplex: O(nnz)-per-pivot, falls back to the dense
  /// oracle on numerical breakdown.
  kRevised,
  /// Dense tableau: the original always-available oracle.
  kDense,
};

/// Tuning knobs; the defaults are appropriate for the LP sizes produced by
/// the Prospector planners (up to a few thousand rows).
struct SimplexOptions {
  /// Dual feasibility / pricing tolerance.
  double optimality_tol = 1e-9;
  /// Minimum magnitude for an eligible pivot element.
  double pivot_tol = 1e-8;
  /// Feasibility tolerance on phase-1 objective.
  double feasibility_tol = 1e-7;
  /// Hard cap on total pivots; <= 0 means "choose from problem size".
  int max_iterations = 0;
  /// Consecutive non-improving pivots before switching to Bland's rule
  /// (anti-cycling); Dantzig pricing resumes once the objective improves.
  int stall_threshold = 256;
  /// Refuse (ResourceExhausted) rather than allocate a dense tableau
  /// larger than this. Enforced for every algorithm — the dense oracle
  /// must stay runnable so a cross-check can always be taken.
  size_t max_tableau_bytes = size_t{2} * 1024 * 1024 * 1024;
  /// Engine for cold Solve() calls.
  SimplexAlgorithm algorithm = SimplexAlgorithm::kAuto;
  /// Revised simplex: basis pivots between product-form refactorizations.
  /// The eta file is also rebuilt early when its fill-in outgrows the
  /// basis dimension (see revised_simplex.cc).
  int refactor_interval = 64;
  /// Verify every revised Solve() against the dense oracle and return the
  /// *dense* solution, making downstream decisions bit-identical to a
  /// dense-only pipeline (semantics mirror SolveWarm/SolveHot
  /// cross_check: a status or objective mismatch is a solver bug and
  /// aborts with a diagnostic). Building with -DPROSPECTOR_LP_CROSSCHECK=ON
  /// forces this on for every solve in the process.
  bool cross_check = false;
};

/// Two-phase primal simplex with bounded variables, with two engines: a
/// sparse revised simplex (the default cold path) and a dense tableau
/// (the always-available oracle, and the only engine behind
/// SolveWarm/SolveHot, whose retained state is the dense tableau itself).
///
/// Handles general models: {<=, >=, =} rows, variable bounds including
/// infinite and fixed ranges, free variables, minimize or maximize.
/// Rows become equalities via ranged slack variables; artificial variables
/// are introduced in phase 1 only for rows whose slack basis is infeasible
/// (none for the all-<= nonnegative-RHS programs built by the planners,
/// which therefore skip phase 1 entirely).
///
/// The implementation follows the textbook bounded-variable method: nonbasic
/// variables rest at a finite bound (or 0 when free), the ratio test allows
/// bound flips, Dantzig pricing with a Bland's-rule fallback guards against
/// cycling, and ties in the ratio test are broken toward the largest pivot
/// magnitude for numerical stability.
class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves the model. Returns an error Status for malformed models;
  /// infeasible/unbounded outcomes are reported inside Solution.
  /// Dispatches on options().algorithm: by default (kAuto) the engine is
  /// chosen per model from its size and constraint-matrix density — a pure
  /// function of the model, so repeated solves stay deterministic.
  Result<Solution> Solve(const Model& model) const;

  /// The dense-tableau oracle, callable directly regardless of
  /// options().algorithm — this is the original solver and the reference
  /// every other path (warm, hot, revised) is checked against.
  Result<Solution> SolveDense(const Model& model) const;

  /// The sparse revised simplex: product-form factorized basis with
  /// periodic refactorization, O(nnz)-per-pivot pricing and FTRAN/BTRAN,
  /// same pricing / bounded-variable ratio test / Bland anti-cycling rules
  /// as the dense engine. Numerical breakdown (a singular refactorization)
  /// falls back to SolveDense, so the result is always well-defined.
  ///
  /// With `cross_check` set (or in a -DPROSPECTOR_LP_CROSSCHECK=ON build),
  /// the model is additionally solved dense; the two runs must agree on
  /// status and objective (a mismatch is a solver bug and aborts the
  /// process with a diagnostic) and the *dense* solution is returned —
  /// making every downstream decision bit-identical to a dense-only
  /// pipeline, at the price of the speedup.
  Result<Solution> SolveRevised(const Model& model,
                                bool cross_check = false) const;

  /// Solves the model starting from `warm`, a basis captured from a prior
  /// solve of a structurally identical model (same constraint matrix;
  /// objective, bounds, and RHS may have drifted — the pattern produced by
  /// Model::SetObjective/SetBounds/SetRhs). Falls back to Solve() when the
  /// basis does not fit the model, is singular, or is no longer primal
  /// feasible after the drift, so the result is always well-defined.
  ///
  /// With `cross_check` set, the model is additionally solved cold; the
  /// two runs must agree on status and objective (a mismatch is a solver
  /// bug and aborts the process with a diagnostic) and the *cold* solution
  /// is returned — making every downstream decision bit-identical to a
  /// pipeline that never warm-started, at the price of the speedup.
  Result<Solution> SolveWarm(const Model& model, const Basis& warm,
                             bool cross_check = false) const;

  /// Solves the model hot from `state`, the retained tableau of a prior
  /// optimal solve of the same model lineage, and stores the new final
  /// tableau back into `state` for the next call. An empty state (first
  /// call), a shrunken model, a resting position the drifted bounds no
  /// longer support, or a restored point the new RHS/bounds make primal
  /// infeasible all fall back to a cold solve that repopulates the state —
  /// the result is always well-defined.
  ///
  /// Supported drift between calls, relative to the model at capture:
  /// objective, bounds, and RHS changes; appended variables; appended
  /// rows; and new terms on pre-existing rows *provided those terms
  /// reference appended variables* (the pattern Model's patching API plus
  /// AddRowTerm produce for incremental sample blocks). Editing a
  /// pre-capture coefficient of a pre-capture variable is NOT supported
  /// and will be caught by `cross_check` (semantics identical to
  /// SolveWarm: verify against a cold solve, abort on mismatch, return the
  /// cold solution).
  Result<Solution> SolveHot(const Model& model, TableauState* state,
                            bool cross_check = false) const;

 private:
  Result<Solution> SolveImpl(const Model& model, TableauState* capture) const;

  SimplexOptions options_;
};

/// Adapts a basis to a model grown by appended variables and/or appended
/// rows (how the incremental planners extend a cached LP with new sample
/// blocks): existing assignments carry over, appended rows enter with
/// their slack basic, appended variables rest at the finite bound nearest
/// zero — the cold solver's own initial choice. Returns an empty basis
/// (forcing a cold solve) when `basis` is not a prefix of the new model.
Basis ExtendBasis(const Basis& basis, const Model& model);

}  // namespace lp
}  // namespace prospector

#endif  // PROSPECTOR_LP_SIMPLEX_H_
