#ifndef PROSPECTOR_LP_SIMPLEX_H_
#define PROSPECTOR_LP_SIMPLEX_H_

#include <string>
#include <vector>

#include "src/lp/model.h"
#include "src/util/status.h"

namespace prospector {
namespace lp {

/// Termination state of a solve.
enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

inline const char* ToString(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
  }
  return "unknown";
}

/// Per-solve work accounting. Counts are deterministic — two solves of the
/// same model always pivot identically — so they can feed the metrics
/// registry without breaking the bit-identical-snapshot contract.
struct SolveStats {
  int phase1_iterations = 0;  ///< pivots spent finding a feasible basis
  int phase2_iterations = 0;  ///< pivots spent optimizing
  /// Times Dantzig pricing stalled past the threshold and the solver fell
  /// back to Bland's rule (anti-cycling). Persistently nonzero values on
  /// planner LPs signal degenerate models worth re-formulating.
  int blands_activations = 0;
  int rows = 0;         ///< constraint rows in the model
  int columns = 0;      ///< structural variables
  int artificials = 0;  ///< phase-1 artificial variables introduced

  int total_iterations() const { return phase1_iterations + phase2_iterations; }

  void Accumulate(const SolveStats& other) {
    phase1_iterations += other.phase1_iterations;
    phase2_iterations += other.phase2_iterations;
    blands_activations += other.blands_activations;
    rows += other.rows;
    columns += other.columns;
    artificials += other.artificials;
  }
};

/// Solver output. `values` holds the primal point for the model's
/// structural variables (only meaningful when status == kOptimal).
struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> values;
  /// Dual value (shadow price) per row, in the sign convention of the
  /// model's own sense: the objective's improvement per unit of RHS slack.
  /// For a <= row of a maximization this is >= 0.
  std::vector<double> row_duals;
  /// Reduced cost per structural variable (same sign convention).
  std::vector<double> reduced_costs;
  SolveStats stats;
  /// Max bound/row violation of the returned point, as re-checked against
  /// the original model (a numerical health indicator).
  double primal_residual = 0.0;
};

/// Tuning knobs; the defaults are appropriate for the LP sizes produced by
/// the Prospector planners (up to a few thousand rows).
struct SimplexOptions {
  /// Dual feasibility / pricing tolerance.
  double optimality_tol = 1e-9;
  /// Minimum magnitude for an eligible pivot element.
  double pivot_tol = 1e-8;
  /// Feasibility tolerance on phase-1 objective.
  double feasibility_tol = 1e-7;
  /// Hard cap on total pivots; <= 0 means "choose from problem size".
  int max_iterations = 0;
  /// Consecutive non-improving pivots before switching to Bland's rule
  /// (anti-cycling); Dantzig pricing resumes once the objective improves.
  int stall_threshold = 256;
  /// Refuse (ResourceExhausted) rather than allocate a dense tableau
  /// larger than this.
  size_t max_tableau_bytes = size_t{2} * 1024 * 1024 * 1024;
};

/// Two-phase primal simplex with bounded variables on a dense tableau.
///
/// Handles general models: {<=, >=, =} rows, variable bounds including
/// infinite and fixed ranges, free variables, minimize or maximize.
/// Rows become equalities via ranged slack variables; artificial variables
/// are introduced in phase 1 only for rows whose slack basis is infeasible
/// (none for the all-<= nonnegative-RHS programs built by the planners,
/// which therefore skip phase 1 entirely).
///
/// The implementation follows the textbook bounded-variable method: nonbasic
/// variables rest at a finite bound (or 0 when free), the ratio test allows
/// bound flips, Dantzig pricing with a Bland's-rule fallback guards against
/// cycling, and ties in the ratio test are broken toward the largest pivot
/// magnitude for numerical stability.
class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves the model. Returns an error Status for malformed models;
  /// infeasible/unbounded outcomes are reported inside Solution.
  Result<Solution> Solve(const Model& model) const;

 private:
  SimplexOptions options_;
};

}  // namespace lp
}  // namespace prospector

#endif  // PROSPECTOR_LP_SIMPLEX_H_
