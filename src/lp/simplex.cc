#include "src/lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "src/lp/solver_internal.h"
#include "src/obs/obs.h"

namespace prospector {
namespace lp {
namespace internal {

// Working state of a solve: the equality-form problem
//   A x = b,  lo <= x <= up
// with a dense tableau T = B^{-1} A maintained explicitly, plus the basic
// variable values and the reduced-cost row for the active phase.
struct Tableau {
  int m = 0;      // rows
  int ncols = 0;  // structural + slack + artificial columns

  std::vector<double> t;      // m * ncols, row-major: B^{-1} A
  std::vector<double> xb;     // m: values of basic variables
  std::vector<double> d;      // ncols: reduced costs for active phase cost
  std::vector<double> cost;   // ncols: active phase cost
  std::vector<double> lo, up;
  std::vector<int> basis;     // m: column basic in each row
  std::vector<VarStatus> status;

  double* Row(int i) { return t.data() + static_cast<size_t>(i) * ncols; }
  const double* Row(int i) const {
    return t.data() + static_cast<size_t>(i) * ncols;
  }

  // Value of a nonbasic column under its current status.
  double NonbasicValue(int j) const {
    switch (status[j]) {
      case VarStatus::kAtLower: return lo[j];
      case VarStatus::kAtUpper: return up[j];
      case VarStatus::kFreeAtZero: return 0.0;
      case VarStatus::kBasic: break;
    }
    return 0.0;
  }

  double ObjectiveNow() const {
    double v = 0.0;
    for (int j = 0; j < ncols; ++j) {
      if (status[j] != VarStatus::kBasic) v += cost[j] * NonbasicValue(j);
    }
    for (int i = 0; i < m; ++i) v += cost[basis[i]] * xb[i];
    return v;
  }

  // Recomputes the reduced-cost row d = cost - cost_B^T * T.  O(m * ncols).
  void RecomputeReducedCosts() {
    d = cost;
    for (int i = 0; i < m; ++i) {
      const double cb = cost[basis[i]];
      if (cb == 0.0) continue;
      const double* row = Row(i);
      for (int j = 0; j < ncols; ++j) d[j] -= cb * row[j];
    }
    for (int i = 0; i < m; ++i) d[basis[i]] = 0.0;
  }
};

}  // namespace internal

namespace {

using internal::Tableau;
using internal::VarStatus;

struct PivotChoice {
  int entering = -1;
  int direction = +1;  // +1: entering increases, -1: decreases
};

// Pricing: pick an entering column whose movement improves the objective.
// Dantzig rule (largest violation) normally; Bland (lowest index) when
// `bland` is set. Fixed columns (lo == up) never enter.
PivotChoice Price(const Tableau& tab, double tol, bool bland) {
  PivotChoice best;
  double best_score = tol;
  for (int j = 0; j < tab.ncols; ++j) {
    if (tab.status[j] == VarStatus::kBasic) continue;
    if (tab.lo[j] == tab.up[j]) continue;  // fixed
    const double dj = tab.d[j];
    int dir = 0;
    double score = 0.0;
    switch (tab.status[j]) {
      case VarStatus::kAtLower:
        if (dj < -tol) { dir = +1; score = -dj; }
        break;
      case VarStatus::kAtUpper:
        if (dj > tol) { dir = -1; score = dj; }
        break;
      case VarStatus::kFreeAtZero:
        if (std::abs(dj) > tol) { dir = dj < 0 ? +1 : -1; score = std::abs(dj); }
        break;
      case VarStatus::kBasic:
        break;
    }
    if (dir == 0) continue;
    if (bland) return {j, dir};
    if (score > best_score) {
      best_score = score;
      best = {j, dir};
    }
  }
  return best;
}

struct RatioResult {
  double step = std::numeric_limits<double>::infinity();
  int leaving_row = -1;          // -1: bound flip (or unbounded if step=inf)
  bool leaving_to_upper = false; // where the leaving variable lands
};

// Bounded-variable ratio test for entering column j moving in `direction`.
RatioResult RatioTest(const Tableau& tab, int j, int direction,
                      double pivot_tol, bool bland) {
  RatioResult r;
  // The entering variable may at most traverse its own range.
  const double own_range = tab.up[j] - tab.lo[j];  // inf if unbounded
  r.step = own_range;  // leaving_row stays -1 => bound flip

  const double kTieTol = 1e-9;
  double best_pivot_mag = 0.0;
  int best_basis_col = std::numeric_limits<int>::max();

  for (int i = 0; i < tab.m; ++i) {
    const double wij = tab.Row(i)[j];
    if (std::abs(wij) < pivot_tol) continue;
    const double delta = direction * wij;  // xb[i] decreases by delta * step
    const int b = tab.basis[i];
    double limit;
    bool to_upper;
    if (delta > 0) {
      if (tab.lo[b] == -kInfinity) continue;
      limit = (tab.xb[i] - tab.lo[b]) / delta;
      to_upper = false;
    } else {
      if (tab.up[b] == kInfinity) continue;
      limit = (tab.up[b] - tab.xb[i]) / (-delta);
      to_upper = true;
    }
    if (limit < 0) limit = 0;  // degeneracy / roundoff
    if (limit < r.step - kTieTol) {
      r.step = limit;
      r.leaving_row = i;
      r.leaving_to_upper = to_upper;
      best_pivot_mag = std::abs(wij);
      best_basis_col = b;
    } else if (limit <= r.step + kTieTol && r.leaving_row >= 0) {
      // Tie-breaking: Bland wants the lowest basis column; otherwise prefer
      // the largest pivot magnitude for stability.
      if (bland ? (b < best_basis_col) : (std::abs(wij) > best_pivot_mag)) {
        r.step = std::min(r.step, limit);
        r.leaving_row = i;
        r.leaving_to_upper = to_upper;
        best_pivot_mag = std::abs(wij);
        best_basis_col = b;
      }
    }
  }
  return r;
}

// Applies the pivot: entering column j (moving `direction`), basic values
// updated by `step`, row `leaving_row` replaced.  If leaving_row == -1 the
// entering variable just flips to its opposite bound.
void ApplyStep(Tableau* tab, int j, int direction, const RatioResult& rr) {
  const double step = rr.step;
  if (step != 0.0) {
    for (int i = 0; i < tab->m; ++i) {
      const double wij = tab->Row(i)[j];
      if (wij != 0.0) tab->xb[i] -= direction * step * wij;
    }
  }
  if (rr.leaving_row < 0) {
    // Bound flip.
    tab->status[j] = (direction > 0) ? VarStatus::kAtUpper : VarStatus::kAtLower;
    return;
  }
  const int r = rr.leaving_row;
  const int leaving = tab->basis[r];
  const double entering_value = tab->NonbasicValue(j) + direction * step;

  // Gaussian elimination on the pivot column.
  double* prow = tab->Row(r);
  const double piv = prow[j];
  const double inv = 1.0 / piv;
  for (int c = 0; c < tab->ncols; ++c) prow[c] *= inv;
  prow[j] = 1.0;  // exact
  for (int i = 0; i < tab->m; ++i) {
    if (i == r) continue;
    double* row = tab->Row(i);
    const double f = row[j];
    if (f == 0.0) continue;
    for (int c = 0; c < tab->ncols; ++c) row[c] -= f * prow[c];
    row[j] = 0.0;  // exact
  }
  // Reduced-cost row update.
  {
    const double f = tab->d[j];
    if (f != 0.0) {
      for (int c = 0; c < tab->ncols; ++c) tab->d[c] -= f * prow[c];
    }
    tab->d[j] = 0.0;
  }

  tab->status[leaving] =
      rr.leaving_to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
  tab->basis[r] = j;
  tab->status[j] = VarStatus::kBasic;
  tab->xb[r] = entering_value;
}

// Runs simplex iterations until optimal/unbounded/limit. Returns status.
SolveStatus Iterate(Tableau* tab, const SimplexOptions& opts, int max_iters,
                    int* iterations, int* blands_activations) {
  bool bland = false;
  int stall = 0;
  double last_obj = tab->ObjectiveNow();
  for (int it = 0; it < max_iters; ++it) {
    PivotChoice pc = Price(*tab, opts.optimality_tol, bland);
    if (pc.entering < 0) {
      *iterations = it;
      return SolveStatus::kOptimal;
    }
    RatioResult rr = RatioTest(*tab, pc.entering, pc.direction,
                               opts.pivot_tol, bland);
    if (std::isinf(rr.step)) {
      *iterations = it;
      return SolveStatus::kUnbounded;
    }
    ApplyStep(tab, pc.entering, pc.direction, rr);

    const double obj = tab->ObjectiveNow();
    if (obj < last_obj - 1e-12) {
      stall = 0;
      bland = false;
      last_obj = obj;
    } else if (++stall > opts.stall_threshold) {
      if (!bland) ++*blands_activations;
      bland = true;  // anti-cycling fallback until progress resumes
    }
  }
  *iterations = max_iters;
  return SolveStatus::kIterationLimit;
}

// Fills values, objective, duals, reduced costs, residual, and the
// reusable basis from a tableau that Iterate() left optimal. Shared by the
// cold and warm solve paths so both extract identically.
void ExtractOptimal(const Tableau& tab, const Model& model, int nstruct,
                    int m, bool maximize, Solution* sol) {
  sol->values.assign(nstruct, 0.0);
  for (int j = 0; j < nstruct; ++j) {
    if (tab.status[j] != VarStatus::kBasic) {
      sol->values[j] = tab.NonbasicValue(j);
    }
  }
  for (int i = 0; i < m; ++i) {
    if (tab.basis[i] < nstruct) sol->values[tab.basis[i]] = tab.xb[i];
  }
  sol->objective = model.ObjectiveValue(sol->values);

  // Duals: with the slack column of row i forming the i-th identity
  // column, the internal dual is y_int_i = -d[slack_i]; converting back to
  // the model's own sense flips the sign for maximization.
  sol->row_duals.resize(m);
  for (int i = 0; i < m; ++i) {
    const double y_internal = -tab.d[nstruct + i];
    sol->row_duals[i] = maximize ? -y_internal : y_internal;
  }
  sol->reduced_costs.resize(nstruct);
  for (int j = 0; j < nstruct; ++j) {
    sol->reduced_costs[j] = maximize ? -tab.d[j] : tab.d[j];
  }

  sol->primal_residual = internal::ComputePrimalResidual(model, sol->values);

  // Capture the basis for future warm starts — only when no artificial
  // column stayed basic, since a warm restore has no artificial columns.
  for (int i = 0; i < m; ++i) {
    if (tab.basis[i] >= nstruct + m) return;
  }
  sol->basis.num_structural = nstruct;
  sol->basis.num_rows = m;
  sol->basis.basic = tab.basis;
  sol->basis.status.resize(nstruct + m);
  for (int j = 0; j < nstruct + m; ++j) {
    sol->basis.status[j] = static_cast<unsigned char>(tab.status[j]);
  }
}

// Builds the structural+slack tableau for `model`, restores the `warm`
// basis, and re-optimizes with phase-2 pivots only. Returns false —
// leaving *sol unusable — when the basis cannot be restored: dimension or
// status mismatch, a nonbasic variable resting on a bound the drifted
// model no longer has, a singular basis matrix, or a basic point the new
// RHS/bounds make primal infeasible. The caller then solves cold.
bool WarmAttempt(const Model& model, const SimplexOptions& opts,
                 const Basis& warm, Solution* sol) {
  const int nstruct = model.num_variables();
  const int m = model.num_rows();
  const bool maximize = model.sense() == Sense::kMaximize;
  const int ncols = nstruct + m;
  if (warm.num_structural != nstruct || warm.num_rows != m) return false;
  if (static_cast<int>(warm.status.size()) != ncols) return false;
  if (static_cast<int>(warm.basic.size()) != m) return false;

  Tableau tab;
  tab.m = m;
  tab.ncols = ncols;
  tab.t.assign(static_cast<size_t>(m) * ncols, 0.0);
  std::vector<double> rhs(m);
  for (int i = 0; i < m; ++i) {
    const Row& row = model.row(i);
    rhs[i] = row.rhs;
    double* trow = tab.Row(i);
    for (const Term& t : row.terms) trow[t.var] += t.coeff;
    trow[nstruct + i] = 1.0;  // slack
  }
  tab.lo.resize(ncols);
  tab.up.resize(ncols);
  tab.cost.assign(ncols, 0.0);
  for (int j = 0; j < nstruct; ++j) {
    tab.lo[j] = model.variable(j).lower;
    tab.up[j] = model.variable(j).upper;
    tab.cost[j] = maximize ? -model.variable(j).objective
                           : model.variable(j).objective;
  }
  for (int i = 0; i < m; ++i) {
    const int sj = nstruct + i;
    switch (model.row(i).type) {
      case RowType::kLessEqual:    tab.lo[sj] = 0.0;        tab.up[sj] = kInfinity; break;
      case RowType::kGreaterEqual: tab.lo[sj] = -kInfinity; tab.up[sj] = 0.0;       break;
      case RowType::kEqual:        tab.lo[sj] = 0.0;        tab.up[sj] = 0.0;       break;
    }
  }

  // Restore statuses. Reject resting positions the drifted bounds no
  // longer support — a nonbasic variable must sit on a finite bound.
  tab.status.resize(ncols);
  std::vector<char> is_basic_col(ncols, 0);
  int basic_count = 0;
  for (int j = 0; j < ncols; ++j) {
    if (warm.status[j] > static_cast<unsigned char>(VarStatus::kFreeAtZero)) {
      return false;
    }
    const VarStatus s = static_cast<VarStatus>(warm.status[j]);
    if (s == VarStatus::kBasic) ++basic_count;
    if (s == VarStatus::kAtLower && tab.lo[j] == -kInfinity) return false;
    if (s == VarStatus::kAtUpper && tab.up[j] == kInfinity) return false;
    tab.status[j] = s;
  }
  if (basic_count != m) return false;
  for (int r = 0; r < m; ++r) {
    const int jb = warm.basic[r];
    if (jb < 0 || jb >= ncols) return false;
    if (tab.status[jb] != VarStatus::kBasic) return false;
    if (is_basic_col[jb]) return false;  // duplicate basic column
    is_basic_col[jb] = 1;
  }

  // Refactorize: Gauss-Jordan turns each basic column into an identity
  // column, carrying the RHS along so B^{-1} b is available afterwards.
  // Each basic column pivots on the largest eligible element among rows
  // not yet claimed; a pivot below tolerance means the basis matrix is
  // singular and the warm start is abandoned.
  tab.basis.assign(m, -1);
  std::vector<char> row_used(m, 0);
  for (int r = 0; r < m; ++r) {
    const int jb = warm.basic[r];
    int prow = -1;
    double best = opts.pivot_tol;
    for (int i = 0; i < m; ++i) {
      if (row_used[i]) continue;
      const double a = std::abs(tab.Row(i)[jb]);
      if (a > best) {
        best = a;
        prow = i;
      }
    }
    if (prow < 0) return false;  // singular basis
    double* p = tab.Row(prow);
    const double inv = 1.0 / p[jb];
    for (int c = 0; c < ncols; ++c) p[c] *= inv;
    p[jb] = 1.0;  // exact
    rhs[prow] *= inv;
    for (int i = 0; i < m; ++i) {
      if (i == prow) continue;
      double* rowi = tab.Row(i);
      const double f = rowi[jb];
      if (f == 0.0) continue;
      for (int c = 0; c < ncols; ++c) rowi[c] -= f * p[c];
      rowi[jb] = 0.0;  // exact
      rhs[i] -= f * rhs[prow];
    }
    row_used[prow] = 1;
    tab.basis[prow] = jb;
  }

  // Basic values at the restored point: xb = B^{-1} b - (B^{-1} N) x_N.
  tab.xb.assign(m, 0.0);
  for (int i = 0; i < m; ++i) {
    double v = rhs[i];
    const double* rowi = tab.Row(i);
    for (int j = 0; j < ncols; ++j) {
      if (tab.status[j] == VarStatus::kBasic) continue;
      const double nb = tab.NonbasicValue(j);
      if (rowi[j] != 0.0 && nb != 0.0) v -= rowi[j] * nb;
    }
    tab.xb[i] = v;
  }
  // The restored basis must still be primal feasible under the new
  // RHS/bounds; otherwise a cold solve (with its phase 1) is required.
  for (int i = 0; i < m; ++i) {
    const int b = tab.basis[i];
    if (tab.xb[i] < tab.lo[b] - opts.feasibility_tol ||
        tab.xb[i] > tab.up[b] + opts.feasibility_tol) {
      return false;
    }
  }

  sol->stats.rows = m;
  sol->stats.columns = nstruct;
  sol->stats.artificials = 0;
  sol->warm_started = true;
  const int default_iters = 50 * (m + ncols) + 1000;
  const int max_iters =
      opts.max_iterations > 0 ? opts.max_iterations : default_iters;
  tab.RecomputeReducedCosts();
  const SolveStatus st = Iterate(&tab, opts, max_iters,
                                 &sol->stats.phase2_iterations,
                                 &sol->stats.blands_activations);
  sol->status = st;
  if (st == SolveStatus::kOptimal) {
    ExtractOptimal(tab, model, nstruct, m, maximize, sol);
  }
  return true;
}

// Drops the artificial columns from a finished tableau so it can be
// retained for hot re-solves. Returns false (leave the tableau uncaptured)
// when an artificial column stayed basic — the restored state would not be
// expressible without it. Rows are compacted front-to-back; row i's
// destination ends at i*ncols + ncols <= (i+1)*ncols', before row i+1's
// source, so a per-row memmove is safe.
bool CaptureTableau(Tableau* tab, int nstruct, int m) {
  const int ncols = nstruct + m;
  for (int i = 0; i < m; ++i) {
    if (tab->basis[i] >= ncols) return false;
  }
  if (tab->ncols != ncols) {
    for (int i = 0; i < m; ++i) {
      std::memmove(tab->t.data() + static_cast<size_t>(i) * ncols,
                   tab->t.data() + static_cast<size_t>(i) * tab->ncols,
                   sizeof(double) * ncols);
    }
    tab->t.resize(static_cast<size_t>(m) * ncols);
    tab->lo.resize(ncols);
    tab->up.resize(ncols);
    tab->cost.resize(ncols);
    tab->status.resize(ncols);
    tab->ncols = ncols;
  }
  tab->d.clear();  // recomputed on reuse
  return true;
}

// Re-optimizes a patched/grown model directly from the retained final
// tableau — the refactorization-free counterpart of WarmAttempt. The
// stored rows already hold B^-1 A, so only the appended pieces need work:
// a new column j costs one B^-1 a_j accumulation through the stored slack
// columns (B^-1 e_i), and a new row costs one elimination pass of the old
// basic columns. Returns false — leaving `tab` unusable, the caller must
// discard it — when the model shrank, a resting position no longer exists,
// or the restored point is primal infeasible under the new RHS/bounds.
bool HotAttempt(const Model& model, const SimplexOptions& opts, Tableau* tab,
                Solution* sol) {
  const int nstruct = model.num_variables();
  const int m = model.num_rows();
  const int m_old = tab->m;
  const int nstruct_old = tab->ncols - m_old;
  if (nstruct < nstruct_old || m < m_old) return false;
  const bool maximize = model.sense() == Sense::kMaximize;
  const int ncols = nstruct + m;

  // --- Widen the stored tableau to the grown model. Old structural
  // columns keep their index; slack columns shift from nstruct_old+i to
  // nstruct+i; appended rows enter with their slack basic. ---
  if (nstruct != nstruct_old || m != m_old) {
    std::vector<double> t(static_cast<size_t>(m) * ncols, 0.0);
    for (int i = 0; i < m_old; ++i) {
      const double* src = tab->t.data() + static_cast<size_t>(i) * tab->ncols;
      double* dst = t.data() + static_cast<size_t>(i) * ncols;
      std::memcpy(dst, src, sizeof(double) * nstruct_old);
      std::memcpy(dst + nstruct, src + nstruct_old, sizeof(double) * m_old);
    }
    std::vector<VarStatus> status(ncols, VarStatus::kAtLower);
    for (int j = 0; j < nstruct_old; ++j) status[j] = tab->status[j];
    for (int i = 0; i < m_old; ++i) {
      status[nstruct + i] = tab->status[nstruct_old + i];
    }
    std::vector<int> basis(m);
    for (int i = 0; i < m_old; ++i) {
      const int jb = tab->basis[i];
      basis[i] = jb < nstruct_old ? jb : jb - nstruct_old + nstruct;
    }
    for (int i = m_old; i < m; ++i) {
      basis[i] = nstruct + i;
      status[nstruct + i] = VarStatus::kBasic;
      t[static_cast<size_t>(i) * ncols + nstruct + i] = 1.0;
    }
    tab->t = std::move(t);
    tab->status = std::move(status);
    tab->basis = std::move(basis);
    tab->m = m;
    tab->ncols = ncols;
    tab->xb.resize(m);
  }

  // --- Refresh bounds and costs from the (possibly drifted) model. ---
  tab->lo.assign(ncols, 0.0);
  tab->up.assign(ncols, 0.0);
  tab->cost.assign(ncols, 0.0);
  for (int j = 0; j < nstruct; ++j) {
    const Variable& v = model.variable(j);
    tab->lo[j] = v.lower;
    tab->up[j] = v.upper;
    tab->cost[j] = maximize ? -v.objective : v.objective;
  }
  for (int i = 0; i < m; ++i) {
    const int sj = nstruct + i;
    switch (model.row(i).type) {
      case RowType::kLessEqual:    tab->lo[sj] = 0.0;        tab->up[sj] = kInfinity; break;
      case RowType::kGreaterEqual: tab->lo[sj] = -kInfinity; tab->up[sj] = 0.0;       break;
      case RowType::kEqual:        tab->lo[sj] = 0.0;        tab->up[sj] = 0.0;       break;
    }
  }
  // Appended variables rest at the finite bound nearest zero — the cold
  // solver's own initial choice.
  for (int j = nstruct_old; j < nstruct; ++j) {
    tab->status[j] = internal::InitialRestStatus(tab->lo[j], tab->up[j]);
  }
  // Every nonbasic resting position must still exist under the new bounds.
  for (int j = 0; j < ncols; ++j) {
    if (tab->status[j] == VarStatus::kAtLower && tab->lo[j] == -kInfinity) {
      return false;
    }
    if (tab->status[j] == VarStatus::kAtUpper && tab->up[j] == kInfinity) {
      return false;
    }
  }

  // --- Appended columns: B^-1 a_j accumulated through the stored slack
  // columns (B^-1 e_i). Pre-capture rows may only carry new-variable terms
  // that were appended after capture (the SolveHot contract), so scanning
  // them for terms on new variables recovers exactly the appended
  // coefficients. The triplets are gathered first so the accumulation can
  // sweep the tableau row-major, once. ---
  struct NewCoeff {
    int row, var;
    double coeff;
  };
  std::vector<NewCoeff> appended;
  for (int i = 0; i < m_old; ++i) {
    for (const Term& term : model.row(i).terms) {
      if (term.var >= nstruct_old) appended.push_back({i, term.var, term.coeff});
    }
  }
  if (!appended.empty()) {
    for (int r = 0; r < m_old; ++r) {
      double* rowr = tab->Row(r);
      for (const NewCoeff& nc : appended) {
        const double binv = rowr[nstruct + nc.row];
        if (binv != 0.0) rowr[nc.var] += nc.coeff * binv;
      }
    }
  }
  // --- Appended rows: raw coefficients, then eliminate the old basic
  // columns. Each stored row has zeros in every basic column but its own,
  // so one pass in any order zeroes them all without fill-in. ---
  for (int i = m_old; i < m; ++i) {
    double* rowi = tab->Row(i);
    for (const Term& term : model.row(i).terms) rowi[term.var] += term.coeff;
    for (int r = 0; r < m_old; ++r) {
      const int jb = tab->basis[r];
      const double f = rowi[jb];
      if (f == 0.0) continue;
      const double* rowr = tab->Row(r);
      for (int c = 0; c < ncols; ++c) rowi[c] -= f * rowr[c];
      rowi[jb] = 0.0;  // exact
    }
  }

  // --- Basic values at the restored point: B^-1 b through the slack
  // columns, minus the nonbasic resting contributions. The nonbasic
  // resting values are gathered once so each tableau row is consumed in a
  // single contiguous pass. ---
  std::vector<double> rhs(m);
  for (int r = 0; r < m; ++r) rhs[r] = model.row(r).rhs;
  std::vector<double> rest(ncols, 0.0);
  for (int j = 0; j < ncols; ++j) {
    if (tab->status[j] != VarStatus::kBasic) rest[j] = tab->NonbasicValue(j);
  }
  for (int i = 0; i < m; ++i) {
    const double* rowi = tab->Row(i);
    double v = 0.0;
    for (int r = 0; r < m; ++r) {
      const double binv = rowi[nstruct + r];
      if (binv != 0.0) v += rhs[r] * binv;
    }
    for (int j = 0; j < ncols; ++j) {
      const double nb = rest[j];
      if (nb != 0.0 && rowi[j] != 0.0) v -= rowi[j] * nb;
    }
    tab->xb[i] = v;
  }
  // The restored basis must still be primal feasible under the new
  // RHS/bounds; otherwise a cold solve (with its phase 1) is required.
  for (int i = 0; i < m; ++i) {
    const int b = tab->basis[i];
    if (tab->xb[i] < tab->lo[b] - opts.feasibility_tol ||
        tab->xb[i] > tab->up[b] + opts.feasibility_tol) {
      return false;
    }
  }

  sol->stats.rows = m;
  sol->stats.columns = nstruct;
  sol->stats.artificials = 0;
  sol->warm_started = true;
  const int default_iters = 50 * (m + ncols) + 1000;
  const int max_iters =
      opts.max_iterations > 0 ? opts.max_iterations : default_iters;
  tab->RecomputeReducedCosts();
  const SolveStatus st = Iterate(tab, opts, max_iters,
                                 &sol->stats.phase2_iterations,
                                 &sol->stats.blands_activations);
  sol->status = st;
  if (st == SolveStatus::kOptimal) {
    ExtractOptimal(*tab, model, nstruct, m, maximize, sol);
  }
  return true;
}

using internal::RecordSolveMetrics;

}  // namespace

TableauState::TableauState() = default;
TableauState::~TableauState() = default;
TableauState::TableauState(TableauState&&) noexcept = default;
TableauState& TableauState::operator=(TableauState&&) noexcept = default;
void TableauState::Clear() { tab_.reset(); }

Result<Solution> SimplexSolver::Solve(const Model& model) const {
  SimplexAlgorithm algo = options_.algorithm;
  if (algo == SimplexAlgorithm::kAuto) {
    algo = internal::ResolveAutoAlgorithm(model);
  }
  if (algo == SimplexAlgorithm::kDense) {
    return SolveImpl(model, nullptr);
  }
#ifdef PROSPECTOR_LP_CROSSCHECK
  return SolveRevised(model, true);
#else
  return SolveRevised(model, options_.cross_check);
#endif
}

Result<Solution> SimplexSolver::SolveDense(const Model& model) const {
  return SolveImpl(model, nullptr);
}

Result<Solution> SimplexSolver::SolveImpl(const Model& model,
                                          TableauState* capture) const {
  PROSPECTOR_SPAN("lp.solve");
  PROSPECTOR_RETURN_IF_ERROR(model.Validate());

  const int nstruct = model.num_variables();
  const int m = model.num_rows();
  const bool maximize = model.sense() == Sense::kMaximize;

  PROSPECTOR_RETURN_IF_ERROR(
      internal::CheckTableauBudget(model, options_.max_tableau_bytes));

  // ---- Assemble the equality-form tableau: [structural | slacks]. ----
  Tableau tab;
  tab.m = m;
  tab.ncols = nstruct + m;  // artificials appended below if needed
  std::vector<double> rhs(m);

  // Dense structural columns (duplicate terms summed).
  std::vector<double> dense(static_cast<size_t>(m) * (nstruct + m), 0.0);
  auto at = [&](int i, int j) -> double& {
    return dense[static_cast<size_t>(i) * (nstruct + m) + j];
  };
  for (int i = 0; i < m; ++i) {
    const Row& row = model.row(i);
    rhs[i] = row.rhs;
    for (const Term& t : row.terms) at(i, t.var) += t.coeff;
    at(i, nstruct + i) = 1.0;  // slack
  }

  tab.lo.resize(nstruct + m);
  tab.up.resize(nstruct + m);
  tab.cost.assign(nstruct + m, 0.0);
  for (int j = 0; j < nstruct; ++j) {
    tab.lo[j] = model.variable(j).lower;
    tab.up[j] = model.variable(j).upper;
    tab.cost[j] = maximize ? -model.variable(j).objective
                           : model.variable(j).objective;
  }
  for (int i = 0; i < m; ++i) {
    const int sj = nstruct + i;
    switch (model.row(i).type) {
      case RowType::kLessEqual:    tab.lo[sj] = 0.0;        tab.up[sj] = kInfinity; break;
      case RowType::kGreaterEqual: tab.lo[sj] = -kInfinity; tab.up[sj] = 0.0;       break;
      case RowType::kEqual:        tab.lo[sj] = 0.0;        tab.up[sj] = 0.0;       break;
    }
  }

  // Initial nonbasic status: rest at the finite bound nearest zero.
  tab.status.assign(nstruct + m, VarStatus::kAtLower);
  for (int j = 0; j < nstruct + m; ++j) {
    tab.status[j] = internal::InitialRestStatus(tab.lo[j], tab.up[j]);
  }

  // Residual of each row with everything nonbasic (the slack included):
  // slack basis candidate value = rhs - A_struct * x_N - slack_rest_value.
  // Where the slack's own resting value already absorbs the row, the slack
  // can simply be basic; otherwise the row needs a phase-1 artificial.
  std::vector<double> slack_basic_value(m);
  std::vector<bool> needs_artificial(m, false);
  int nart = 0;
  for (int i = 0; i < m; ++i) {
    double sum = 0.0;
    for (int j = 0; j < nstruct; ++j) {
      const double a = at(i, j);
      if (a != 0.0) {
        double v = 0.0;
        switch (tab.status[j]) {
          case VarStatus::kAtLower: v = tab.lo[j]; break;
          case VarStatus::kAtUpper: v = tab.up[j]; break;
          default: v = 0.0; break;
        }
        sum += a * v;
      }
    }
    const int sj = nstruct + i;
    const double sval = rhs[i] - sum;  // slack value if basic
    if (sval >= tab.lo[sj] - 1e-12 && sval <= tab.up[sj] + 1e-12) {
      slack_basic_value[i] = sval;
    } else {
      needs_artificial[i] = true;
      ++nart;
    }
  }

  const int ncols = nstruct + m + nart;
  tab.ncols = ncols;
  tab.t.assign(static_cast<size_t>(m) * ncols, 0.0);
  for (int i = 0; i < m; ++i) {
    std::memcpy(tab.Row(i), &dense[static_cast<size_t>(i) * (nstruct + m)],
                sizeof(double) * static_cast<size_t>(nstruct + m));
  }
  dense.clear();
  dense.shrink_to_fit();

  tab.lo.resize(ncols);
  tab.up.resize(ncols);
  tab.cost.resize(ncols, 0.0);
  tab.status.resize(ncols, VarStatus::kAtLower);
  tab.basis.resize(m);
  tab.xb.resize(m);

  // Phase-1 cost: minimize total artificial magnitude.
  std::vector<double> phase1_cost(ncols, 0.0);
  {
    int art = nstruct + m;
    for (int i = 0; i < m; ++i) {
      const int sj = nstruct + i;
      if (!needs_artificial[i]) {
        tab.basis[i] = sj;
        tab.status[sj] = VarStatus::kBasic;
        tab.xb[i] = slack_basic_value[i];
        continue;
      }
      // Slack rests at its nearest-zero finite bound (already set above);
      // the artificial absorbs the remaining residual with a +1 column.
      double srest = tab.NonbasicValue(sj);
      double sum = 0.0;
      const double* row = tab.Row(i);
      for (int j = 0; j < nstruct; ++j) {
        if (row[j] != 0.0) sum += row[j] * tab.NonbasicValue(j);
      }
      const double resid = rhs[i] - sum - srest;
      tab.Row(i)[art] = 1.0;
      if (resid >= 0) {
        tab.lo[art] = 0.0;
        tab.up[art] = kInfinity;
        phase1_cost[art] = 1.0;
      } else {
        tab.lo[art] = -kInfinity;
        tab.up[art] = 0.0;
        phase1_cost[art] = -1.0;
      }
      tab.basis[i] = art;
      tab.status[art] = VarStatus::kBasic;
      tab.xb[i] = resid;
      ++art;
    }
  }

  Solution sol;
  sol.stats.rows = m;
  sol.stats.columns = nstruct;
  sol.stats.artificials = nart;
  const int default_iters = 50 * (m + ncols) + 1000;
  const int max_iters =
      options_.max_iterations > 0 ? options_.max_iterations : default_iters;

  // ---- Phase 1 (only when artificials exist). ----
  if (nart > 0) {
    std::vector<double> real_cost = tab.cost;
    tab.cost = phase1_cost;
    tab.RecomputeReducedCosts();
    SolveStatus st = Iterate(&tab, options_, max_iters,
                             &sol.stats.phase1_iterations,
                             &sol.stats.blands_activations);
    const double inf_obj = tab.ObjectiveNow();
    if (st == SolveStatus::kIterationLimit) {
      sol.status = SolveStatus::kIterationLimit;
      RecordSolveMetrics(sol);
      return sol;
    }
    if (inf_obj > options_.feasibility_tol) {
      sol.status = SolveStatus::kInfeasible;
      RecordSolveMetrics(sol);
      return sol;
    }
    // Pin artificials to zero so they can never re-enter.
    for (int j = nstruct + m; j < ncols; ++j) {
      tab.lo[j] = 0.0;
      tab.up[j] = 0.0;
    }
    tab.cost = real_cost;
  }

  // ---- Phase 2. ----
  tab.RecomputeReducedCosts();
  SolveStatus st = Iterate(&tab, options_, max_iters,
                           &sol.stats.phase2_iterations,
                           &sol.stats.blands_activations);
  sol.status = st;
  RecordSolveMetrics(sol);
  if (st != SolveStatus::kOptimal) return sol;

  ExtractOptimal(tab, model, nstruct, m, maximize, &sol);
  if (capture != nullptr && CaptureTableau(&tab, nstruct, m)) {
    capture->tab_ = std::make_unique<Tableau>(std::move(tab));
  }
  return sol;
}

Result<Solution> SimplexSolver::SolveWarm(const Model& model,
                                          const Basis& warm,
                                          bool cross_check) const {
  if (warm.empty()) return Solve(model);
  PROSPECTOR_SPAN("lp.solve_warm");
  PROSPECTOR_RETURN_IF_ERROR(model.Validate());
  PROSPECTOR_RETURN_IF_ERROR(
      internal::CheckTableauBudget(model, options_.max_tableau_bytes));

  Solution sol;
  // An iteration-limited warm run is also retried cold: the fresh crash
  // basis may converge where the stale one wandered.
  if (!WarmAttempt(model, options_, warm, &sol) ||
      sol.status == SolveStatus::kIterationLimit) {
    PROSPECTOR_COUNTER_ADD("lp.warm_fallbacks", 1);
    return Solve(model);
  }
  PROSPECTOR_COUNTER_ADD("lp.warm_solves", 1);
  RecordSolveMetrics(sol);
  if (!cross_check) return sol;

  auto cold = Solve(model);
  if (!cold.ok()) return cold;
  const Solution& c = cold.value();
  const double scale =
      std::max({1.0, std::abs(c.objective), std::abs(sol.objective)});
  const bool status_match = c.status == sol.status;
  const bool objective_match =
      sol.status != SolveStatus::kOptimal ||
      std::abs(c.objective - sol.objective) <= 1e-6 * scale;
  if (!status_match || !objective_match) {
    std::fprintf(stderr,
                 "lp: warm-start cross-check failed: warm %s obj=%.12g vs "
                 "cold %s obj=%.12g (rows=%d cols=%d)\n",
                 ToString(sol.status), sol.objective, ToString(c.status),
                 c.objective, model.num_rows(), model.num_variables());
    std::abort();
  }
  // Return the cold solution so every downstream decision is bit-identical
  // to a pipeline that never warm-started; the flag still records that a
  // warm start ran (and was verified).
  Solution out = std::move(cold.value());
  out.warm_started = true;
  return out;
}

Result<Solution> SimplexSolver::SolveHot(const Model& model,
                                         TableauState* state,
                                         bool cross_check) const {
  if (state == nullptr) return Solve(model);
  PROSPECTOR_SPAN("lp.solve_hot");
  PROSPECTOR_RETURN_IF_ERROR(model.Validate());
  PROSPECTOR_RETURN_IF_ERROR(
      internal::CheckTableauBudget(model, options_.max_tableau_bytes));

  Solution sol;
  // An iteration-limited hot run is also retried cold: the fresh crash
  // basis may converge where the stale one wandered.
  const bool hot_ok =
      !state->empty() &&
      HotAttempt(model, options_, state->tab_.get(), &sol) &&
      sol.status != SolveStatus::kIterationLimit;
  if (!hot_ok) {
    if (!state->empty()) PROSPECTOR_COUNTER_ADD("lp.warm_fallbacks", 1);
    state->Clear();
    auto cold = SolveImpl(model, state);  // dense: captures the tableau
    SimplexAlgorithm algo = options_.algorithm;
    if (algo == SimplexAlgorithm::kAuto) {
      algo = internal::ResolveAutoAlgorithm(model);
    }
    if (algo == SimplexAlgorithm::kDense || !cold.ok()) {
      return cold;
    }
    // The returned solution must be the one a workspace-less pipeline
    // (Solve(), i.e. the revised engine) would produce — degenerate LPs
    // have multiple optimal vertices and the two engines may round
    // different ones — so downstream stays bit-identical either way. The
    // dense run above still seeds the retained tableau for hot resumes.
    return Solve(model);
  }
  PROSPECTOR_COUNTER_ADD("lp.warm_solves", 1);
  RecordSolveMetrics(sol);
  if (!cross_check) return sol;

  auto cold = Solve(model);
  if (!cold.ok()) return cold;
  const Solution& c = cold.value();
  const double scale =
      std::max({1.0, std::abs(c.objective), std::abs(sol.objective)});
  const bool status_match = c.status == sol.status;
  const bool objective_match =
      sol.status != SolveStatus::kOptimal ||
      std::abs(c.objective - sol.objective) <= 1e-6 * scale;
  if (!status_match || !objective_match) {
    std::fprintf(stderr,
                 "lp: hot-start cross-check failed: hot %s obj=%.12g vs "
                 "cold %s obj=%.12g (rows=%d cols=%d)\n",
                 ToString(sol.status), sol.objective, ToString(c.status),
                 c.objective, model.num_rows(), model.num_variables());
    std::abort();
  }
  // Return the cold solution so every downstream decision is bit-identical
  // to a pipeline that never hot-started; the retained tableau (already
  // advanced to the hot optimum) still serves the next call.
  Solution out = std::move(cold.value());
  out.warm_started = true;
  return out;
}

Basis ExtendBasis(const Basis& basis, const Model& model) {
  Basis out;
  const int nstruct = model.num_variables();
  const int m = model.num_rows();
  if (basis.empty() || basis.num_structural > nstruct ||
      basis.num_rows > m) {
    return out;  // no usable prefix: caller solves cold
  }
  if (static_cast<int>(basis.status.size()) !=
          basis.num_structural + basis.num_rows ||
      static_cast<int>(basis.basic.size()) != basis.num_rows) {
    return out;
  }
  out.num_structural = nstruct;
  out.num_rows = m;
  out.status.assign(nstruct + m,
                    static_cast<unsigned char>(VarStatus::kAtLower));
  for (int j = 0; j < basis.num_structural; ++j) {
    out.status[j] = basis.status[j];
  }
  // Appended variables rest at the finite bound nearest zero — the cold
  // solver's own initial choice.
  for (int j = basis.num_structural; j < nstruct; ++j) {
    const Variable& v = model.variable(j);
    out.status[j] = static_cast<unsigned char>(
        internal::InitialRestStatus(v.lower, v.upper));
  }
  // Slack statuses move with the wider structural block.
  for (int i = 0; i < basis.num_rows; ++i) {
    out.status[nstruct + i] = basis.status[basis.num_structural + i];
  }
  out.basic.resize(m);
  for (int r = 0; r < basis.num_rows; ++r) {
    const int jb = basis.basic[r];
    out.basic[r] =
        jb < basis.num_structural ? jb : jb - basis.num_structural + nstruct;
  }
  // Appended rows enter with their slack basic.
  for (int i = basis.num_rows; i < m; ++i) {
    out.basic[i] = nstruct + i;
    out.status[nstruct + i] = static_cast<unsigned char>(VarStatus::kBasic);
  }
  return out;
}

}  // namespace lp
}  // namespace prospector
