// Sparse revised simplex: the default cold-solve engine behind
// SimplexSolver::Solve. It runs the same two-phase bounded-variable method
// as the dense tableau (simplex.cc) — same equality form, same initial
// basis, same Dantzig/Bland pricing, same ratio-test tie-breaking, same
// stall detection — but carries the basis inverse as a product-form eta
// file over CSC columns, so each pivot costs O(nnz) instead of
// O(rows · cols). The factorization is rebuilt every
// SimplexOptions::refactor_interval pivots (and before declaring
// optimality), both for numerical hygiene and to shed eta fill-in; a
// singular refactorization is a numerical breakdown and falls back to the
// dense oracle, which is kept runnable for every accepted model.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "src/lp/simplex.h"
#include "src/lp/solver_internal.h"
#include "src/lp/sparse.h"
#include "src/obs/obs.h"

namespace prospector {
namespace lp {
namespace {

using internal::InitialRestStatus;
using internal::VarStatus;

// An m-vector carried as dense values plus an explicit nonzero index list,
// so FTRAN, the ratio test, and eta capture touch only the fill-in a
// column actually has — the proof LPs run thousands of rows with a
// near-identity basis, where dense O(m) passes per pivot (and O(m^2) per
// refactorization) dwarf the arithmetic. Invariant: vals[i] == 0.0 for
// every i not in `list`; listed entries may still hold an exact 0.0 from
// cancellation (harmless — consumers skip zeros).
struct SparseVec {
  std::vector<double> vals;
  std::vector<int> list;
  std::vector<char> in_list;

  void Resize(int m) {
    vals.assign(m, 0.0);
    in_list.assign(m, 0);
    list.clear();
  }
  void Clear() {
    for (const int i : list) {
      vals[i] = 0.0;
      in_list[i] = 0;
    }
    list.clear();
  }
  void Set(int i, double v) {
    if (!in_list[i]) {
      in_list[i] = 1;
      list.push_back(i);
    }
    vals[i] = v;
  }
  // Deterministic consumption order (and the dense engine's ascending-row
  // scan order) for the pivot search and ratio test.
  void SortIndices() { std::sort(list.begin(), list.end()); }
};

// Product form of the inverse: B^{-1} = E_k^{-1} ... E_1^{-1}, each eta
// recording the column w = B_prev^{-1} a_j that entered at `pivot_row`.
// Nonzeros are packed into flat arrays so FTRAN/BTRAN stream linearly.
class EtaFile {
 public:
  void Clear() {
    etas_.clear();
    nz_rows_.clear();
    nz_vals_.clear();
  }
  size_t entries() const { return nz_rows_.size() + etas_.size(); }

  // Records w (sparse form, indices sorted) as the next eta.
  void Append(const SparseVec& w, int pivot_row) {
    Eta e;
    e.pivot_row = pivot_row;
    e.inv_pivot = 1.0 / w.vals[pivot_row];
    e.begin = static_cast<int>(nz_rows_.size());
    for (const int i : w.list) {
      if (i != pivot_row && w.vals[i] != 0.0) {
        nz_rows_.push_back(i);
        nz_vals_.push_back(w.vals[i]);
      }
    }
    e.end = static_cast<int>(nz_rows_.size());
    etas_.push_back(e);
  }

  // v <- B^{-1} v, dense carrier: apply eta inverses oldest-first.
  void Ftran(std::vector<double>* vp) const {
    std::vector<double>& v = *vp;
    for (const Eta& e : etas_) {
      const double t = v[e.pivot_row];
      if (t == 0.0) continue;
      const double s = t * e.inv_pivot;
      v[e.pivot_row] = s;
      for (int p = e.begin; p < e.end; ++p) v[nz_rows_[p]] -= nz_vals_[p] * s;
    }
  }

  // v <- B^{-1} v, sparse carrier: work scales with the fill-in produced,
  // not with m.
  void FtranSparse(SparseVec* v) const {
    for (const Eta& e : etas_) {
      const double t = v->vals[e.pivot_row];
      if (t == 0.0) continue;
      const double s = t * e.inv_pivot;
      v->vals[e.pivot_row] = s;
      for (int p = e.begin; p < e.end; ++p) {
        const int r = nz_rows_[p];
        if (!v->in_list[r]) {
          v->in_list[r] = 1;
          v->list.push_back(r);
        }
        v->vals[r] -= nz_vals_[p] * s;
      }
    }
  }

  // v <- B^{-T} v: apply transposed eta inverses newest-first.
  void Btran(std::vector<double>* vp) const {
    std::vector<double>& v = *vp;
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
      double acc = v[it->pivot_row];
      for (int p = it->begin; p < it->end; ++p) {
        acc -= nz_vals_[p] * v[nz_rows_[p]];
      }
      v[it->pivot_row] = acc * it->inv_pivot;
    }
  }

 private:
  struct Eta {
    int pivot_row;
    double inv_pivot;
    int begin, end;  // nonzeros excluding the pivot row
  };
  std::vector<Eta> etas_;
  std::vector<int> nz_rows_;
  std::vector<double> nz_vals_;
};

// Equality-form working state; the sparse counterpart of internal::Tableau.
struct Engine {
  const SimplexOptions& opts;
  int m = 0;
  int nstruct = 0;
  int ncols = 0;
  SparseColumns A;  // [structural | slacks | artificials]
  std::vector<double> lo, up, cost, rhs, xb;
  std::vector<int> basis;  // m: column basic in each row
  std::vector<VarStatus> status;
  EtaFile eta;
  int pivots_since_refactor = 0;
  int refactor_every = 64;
  size_t eta_entry_cap = 0;
  bool breakdown = false;

  SparseVec w;            // FTRAN scratch: B^{-1} a_j
  std::vector<double> y;  // BTRAN scratch: duals of the active cost

  explicit Engine(const SimplexOptions& o) : opts(o) {}

  double NonbasicValue(int j) const {
    switch (status[j]) {
      case VarStatus::kAtLower: return lo[j];
      case VarStatus::kAtUpper: return up[j];
      case VarStatus::kFreeAtZero: return 0.0;
      case VarStatus::kBasic: break;
    }
    return 0.0;
  }

  double ObjectiveNow() const {
    double v = 0.0;
    for (int j = 0; j < ncols; ++j) {
      if (status[j] != VarStatus::kBasic) v += cost[j] * NonbasicValue(j);
    }
    for (int i = 0; i < m; ++i) v += cost[basis[i]] * xb[i];
    return v;
  }

  // w <- B^{-1} a_j through the eta file, sparse end to end.
  void ComputeColumn(int j) {
    w.Clear();
    for (int p = A.start[j]; p < A.start[j + 1]; ++p) {
      w.Set(A.row_idx[p], A.value[p]);
    }
    eta.FtranSparse(&w);
    w.SortIndices();
  }

  // Rebuilds the eta file from the current basis columns, re-assigning each
  // basic column to the unclaimed row where it pivots largest (the dense
  // warm-restore rule). Returns false when the basis matrix is singular.
  // Work is proportional to the factorization's fill-in, not m^2: slack
  // columns (the bulk of a planner basis) are unit vectors and cost O(1).
  bool Refactor() {
    eta.Clear();
    pivots_since_refactor = 0;
    const std::vector<int> order = basis;
    std::vector<char> row_used(m, 0);
    for (int p = 0; p < m; ++p) {
      ComputeColumn(order[p]);
      int prow = -1;
      double best = opts.pivot_tol;
      for (const int i : w.list) {
        if (row_used[i]) continue;
        const double a = std::abs(w.vals[i]);
        if (a > best) {
          best = a;
          prow = i;
        }
      }
      if (prow < 0) return false;
      eta.Append(w, prow);
      row_used[prow] = 1;
      basis[prow] = order[p];
    }
    return true;
  }

  // xb = B^{-1} (b - N x_N), evaluated through the (fresh) factorization.
  void RecomputeXb() {
    std::vector<double> v = rhs;
    for (int j = 0; j < ncols; ++j) {
      if (status[j] == VarStatus::kBasic) continue;
      const double rest = NonbasicValue(j);
      if (rest == 0.0) continue;
      for (int p = A.start[j]; p < A.start[j + 1]; ++p) {
        v[A.row_idx[p]] -= A.value[p] * rest;
      }
    }
    eta.Ftran(&v);
    xb = std::move(v);
  }

  // Runs simplex iterations for the active cost until
  // optimal/unbounded/limit; sets `breakdown` (and returns early) when a
  // refactorization goes singular. Pricing, ratio test, and the
  // stall->Bland anti-cycling ladder replicate the dense Iterate().
  SolveStatus Iterate(int max_iters, int* iterations, int* blands_activations) {
    bool bland = false;
    int stall = 0;
    double last_obj = ObjectiveNow();
    int it = 0;
    for (;;) {
      if (it >= max_iters) {
        *iterations = it;
        return SolveStatus::kIterationLimit;
      }

      // Duals of the active cost: y = B^{-T} c_B.
      for (int i = 0; i < m; ++i) y[i] = cost[basis[i]];
      eta.Btran(&y);

      // Pricing: Dantzig (largest violation) or Bland (lowest index), with
      // d_j = c_j - y . a_j computed per column in O(nnz).
      int entering = -1;
      int direction = +1;
      double best_score = opts.optimality_tol;
      for (int j = 0; j < ncols; ++j) {
        if (status[j] == VarStatus::kBasic) continue;
        if (lo[j] == up[j]) continue;  // fixed
        double dj = cost[j];
        for (int p = A.start[j]; p < A.start[j + 1]; ++p) {
          dj -= y[A.row_idx[p]] * A.value[p];
        }
        int dir = 0;
        double score = 0.0;
        switch (status[j]) {
          case VarStatus::kAtLower:
            if (dj < -opts.optimality_tol) { dir = +1; score = -dj; }
            break;
          case VarStatus::kAtUpper:
            if (dj > opts.optimality_tol) { dir = -1; score = dj; }
            break;
          case VarStatus::kFreeAtZero:
            if (std::abs(dj) > opts.optimality_tol) {
              dir = dj < 0 ? +1 : -1;
              score = std::abs(dj);
            }
            break;
          case VarStatus::kBasic:
            break;
        }
        if (dir == 0) continue;
        if (bland) {
          entering = j;
          direction = dir;
          break;
        }
        if (score > best_score) {
          best_score = score;
          entering = j;
          direction = dir;
        }
      }
      if (entering < 0) {
        if (pivots_since_refactor > 0) {
          // Optimality was judged through an accumulated eta file; refresh
          // the factorization and confirm against exact data before
          // declaring it. (A post-refresh improving column resumes
          // pivoting, still bounded by max_iters.)
          if (!Refactor()) {
            breakdown = true;
            *iterations = it;
            return SolveStatus::kIterationLimit;
          }
          RecomputeXb();
          continue;
        }
        *iterations = it;
        return SolveStatus::kOptimal;
      }

      // w = B^{-1} a_j: the entering column in the current basis frame —
      // exactly the dense tableau's column j. Sorted indices keep the ratio
      // test's tie-breaking scan order identical to the dense ascending-row
      // sweep.
      ComputeColumn(entering);

      // Bounded-variable ratio test (dense RatioTest, reading w).
      const double own_range = up[entering] - lo[entering];
      double step = own_range;
      int leaving_row = -1;
      bool leaving_to_upper = false;
      const double kTieTol = 1e-9;
      double best_pivot_mag = 0.0;
      int best_basis_col = std::numeric_limits<int>::max();
      for (const int i : w.list) {
        const double wij = w.vals[i];
        if (std::abs(wij) < opts.pivot_tol) continue;
        const double delta = direction * wij;
        const int b = basis[i];
        double limit;
        bool to_upper;
        if (delta > 0) {
          if (lo[b] == -kInfinity) continue;
          limit = (xb[i] - lo[b]) / delta;
          to_upper = false;
        } else {
          if (up[b] == kInfinity) continue;
          limit = (up[b] - xb[i]) / (-delta);
          to_upper = true;
        }
        if (limit < 0) limit = 0;  // degeneracy / roundoff
        if (limit < step - kTieTol) {
          step = limit;
          leaving_row = i;
          leaving_to_upper = to_upper;
          best_pivot_mag = std::abs(wij);
          best_basis_col = b;
        } else if (limit <= step + kTieTol && leaving_row >= 0) {
          if (bland ? (b < best_basis_col)
                    : (std::abs(wij) > best_pivot_mag)) {
            step = std::min(step, limit);
            leaving_row = i;
            leaving_to_upper = to_upper;
            best_pivot_mag = std::abs(wij);
            best_basis_col = b;
          }
        }
      }
      if (std::isinf(step)) {
        *iterations = it;
        return SolveStatus::kUnbounded;
      }

      // Apply the step (dense ApplyStep): bound flip, or basis exchange
      // recorded as one more eta.
      if (step != 0.0) {
        for (const int i : w.list) {
          if (w.vals[i] != 0.0) xb[i] -= direction * step * w.vals[i];
        }
      }
      if (leaving_row < 0) {
        status[entering] =
            (direction > 0) ? VarStatus::kAtUpper : VarStatus::kAtLower;
      } else {
        const int r = leaving_row;
        const int leaving = basis[r];
        const double entering_value =
            NonbasicValue(entering) + direction * step;
        status[leaving] =
            leaving_to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
        basis[r] = entering;
        status[entering] = VarStatus::kBasic;
        xb[r] = entering_value;
        eta.Append(w, r);
        if (++pivots_since_refactor >= refactor_every ||
            eta.entries() > eta_entry_cap) {
          if (!Refactor()) {
            breakdown = true;
            *iterations = it + 1;
            return SolveStatus::kIterationLimit;
          }
          RecomputeXb();
        }
      }
      ++it;

      const double obj = ObjectiveNow();
      if (obj < last_obj - 1e-12) {
        stall = 0;
        bland = false;
        last_obj = obj;
      } else if (++stall > opts.stall_threshold) {
        if (!bland) ++*blands_activations;
        bland = true;  // anti-cycling fallback until progress resumes
      }
    }
  }
};

// Full two-phase revised solve. Returns false on numerical breakdown
// (singular refactorization) — *sol is then unusable and the caller takes
// the dense oracle instead.
bool RevisedAttempt(const Model& model, const SimplexOptions& opts,
                    Solution* sol) {
  const int nstruct = model.num_variables();
  const int m = model.num_rows();
  const bool maximize = model.sense() == Sense::kMaximize;

  Engine eng(opts);
  eng.m = m;
  eng.nstruct = nstruct;
  eng.A = BuildEqualityColumns(model, {});
  eng.w.Resize(m);
  eng.y.assign(m, 0.0);
  eng.refactor_every = std::max(1, opts.refactor_interval);
  eng.eta_entry_cap =
      std::max<size_t>(size_t{1} << 20, 256 * static_cast<size_t>(m));

  eng.rhs.resize(m);
  for (int i = 0; i < m; ++i) eng.rhs[i] = model.row(i).rhs;

  // Bounds, costs, and initial resting statuses for [structural | slack] —
  // byte-for-byte the dense assembly rules.
  eng.lo.resize(nstruct + m);
  eng.up.resize(nstruct + m);
  eng.cost.assign(nstruct + m, 0.0);
  for (int j = 0; j < nstruct; ++j) {
    eng.lo[j] = model.variable(j).lower;
    eng.up[j] = model.variable(j).upper;
    eng.cost[j] = maximize ? -model.variable(j).objective
                           : model.variable(j).objective;
  }
  for (int i = 0; i < m; ++i) {
    const int sj = nstruct + i;
    switch (model.row(i).type) {
      case RowType::kLessEqual:    eng.lo[sj] = 0.0;        eng.up[sj] = kInfinity; break;
      case RowType::kGreaterEqual: eng.lo[sj] = -kInfinity; eng.up[sj] = 0.0;       break;
      case RowType::kEqual:        eng.lo[sj] = 0.0;        eng.up[sj] = 0.0;       break;
    }
  }
  eng.status.resize(nstruct + m);
  for (int j = 0; j < nstruct + m; ++j) {
    eng.status[j] = InitialRestStatus(eng.lo[j], eng.up[j]);
  }

  // Per-row structural resting sums. Scattering CSC columns in ascending j
  // adds into each row accumulator in the dense assembler's own order, so
  // the artificial decisions below match it bit for bit.
  std::vector<double> sum(m, 0.0);
  for (int j = 0; j < nstruct; ++j) {
    const double rest = eng.NonbasicValue(j);
    if (rest == 0.0) continue;
    for (int p = eng.A.start[j]; p < eng.A.start[j + 1]; ++p) {
      sum[eng.A.row_idx[p]] += eng.A.value[p] * rest;
    }
  }

  // Rows whose slack can absorb the residual start with the slack basic;
  // the rest get a phase-1 artificial (+1 unit column, cost by sign).
  std::vector<double> slack_basic_value(m, 0.0);
  std::vector<char> row_has_artificial(m, 0);
  std::vector<int> artificial_rows;
  for (int i = 0; i < m; ++i) {
    const int sj = nstruct + i;
    const double sval = eng.rhs[i] - sum[i];
    if (sval >= eng.lo[sj] - 1e-12 && sval <= eng.up[sj] + 1e-12) {
      slack_basic_value[i] = sval;
    } else {
      row_has_artificial[i] = 1;
      artificial_rows.push_back(i);
    }
  }
  const int nart = static_cast<int>(artificial_rows.size());
  const int ncols = nstruct + m + nart;
  eng.ncols = ncols;
  for (int r : artificial_rows) {
    eng.A.row_idx.push_back(r);
    eng.A.value.push_back(1.0);
    eng.A.start.push_back(static_cast<int>(eng.A.row_idx.size()));
  }
  eng.lo.resize(ncols, 0.0);
  eng.up.resize(ncols, 0.0);
  eng.cost.resize(ncols, 0.0);
  eng.status.resize(ncols, VarStatus::kAtLower);

  std::vector<double> phase1_cost(ncols, 0.0);
  eng.basis.resize(m);
  eng.xb.resize(m);
  {
    int art = nstruct + m;
    for (int i = 0; i < m; ++i) {
      const int sj = nstruct + i;
      if (!row_has_artificial[i]) {
        eng.basis[i] = sj;
        eng.status[sj] = VarStatus::kBasic;
        eng.xb[i] = slack_basic_value[i];
        continue;
      }
      const double srest = eng.NonbasicValue(sj);
      const double resid = eng.rhs[i] - sum[i] - srest;
      if (resid >= 0) {
        eng.lo[art] = 0.0;
        eng.up[art] = kInfinity;
        phase1_cost[art] = 1.0;
      } else {
        eng.lo[art] = -kInfinity;
        eng.up[art] = 0.0;
        phase1_cost[art] = -1.0;
      }
      eng.basis[i] = art;
      eng.status[art] = VarStatus::kBasic;
      eng.xb[i] = resid;
      ++art;
    }
  }

  sol->stats.rows = m;
  sol->stats.columns = nstruct;
  sol->stats.artificials = nart;
  const int default_iters = 50 * (m + ncols) + 1000;
  const int max_iters =
      opts.max_iterations > 0 ? opts.max_iterations : default_iters;

  // ---- Phase 1 (only when artificials exist). ----
  const std::vector<double> real_cost = eng.cost;
  if (nart > 0) {
    eng.cost = phase1_cost;
    const SolveStatus st = eng.Iterate(max_iters,
                                       &sol->stats.phase1_iterations,
                                       &sol->stats.blands_activations);
    if (eng.breakdown) return false;
    const double inf_obj = eng.ObjectiveNow();
    if (st == SolveStatus::kIterationLimit) {
      sol->status = SolveStatus::kIterationLimit;
      return true;
    }
    if (inf_obj > opts.feasibility_tol) {
      sol->status = SolveStatus::kInfeasible;
      return true;
    }
    // Pin artificials to zero so they can never re-enter.
    for (int j = nstruct + m; j < ncols; ++j) {
      eng.lo[j] = 0.0;
      eng.up[j] = 0.0;
    }
    eng.cost = real_cost;
  }

  // ---- Phase 2. ----
  const SolveStatus st = eng.Iterate(max_iters,
                                     &sol->stats.phase2_iterations,
                                     &sol->stats.blands_activations);
  if (eng.breakdown) return false;
  sol->status = st;
  if (st != SolveStatus::kOptimal) return true;

  // ---- Extraction (dense ExtractOptimal, with duals from BTRAN). The
  // optimality exit guarantees a fresh factorization, so y is exact. ----
  sol->values.assign(nstruct, 0.0);
  for (int j = 0; j < nstruct; ++j) {
    if (eng.status[j] != VarStatus::kBasic) {
      sol->values[j] = eng.NonbasicValue(j);
    }
  }
  for (int i = 0; i < m; ++i) {
    if (eng.basis[i] < nstruct) sol->values[eng.basis[i]] = eng.xb[i];
  }
  sol->objective = model.ObjectiveValue(sol->values);

  for (int i = 0; i < m; ++i) eng.y[i] = eng.cost[eng.basis[i]];
  eng.eta.Btran(&eng.y);
  sol->row_duals.resize(m);
  for (int i = 0; i < m; ++i) {
    // The internal dual of row i is y_i (the slack column is e_i with zero
    // cost, so d[slack_i] = -y_i — the dense convention).
    sol->row_duals[i] = maximize ? -eng.y[i] : eng.y[i];
  }
  sol->reduced_costs.assign(nstruct, 0.0);
  for (int j = 0; j < nstruct; ++j) {
    if (eng.status[j] == VarStatus::kBasic) continue;
    double dj = eng.cost[j];
    for (int p = eng.A.start[j]; p < eng.A.start[j + 1]; ++p) {
      dj -= eng.y[eng.A.row_idx[p]] * eng.A.value[p];
    }
    sol->reduced_costs[j] = maximize ? -dj : dj;
  }
  sol->primal_residual = internal::ComputePrimalResidual(model, sol->values);

  // Capture the basis for future warm starts — only when no artificial
  // column stayed basic, since a warm restore has no artificial columns.
  for (int i = 0; i < m; ++i) {
    if (eng.basis[i] >= nstruct + m) return true;
  }
  sol->basis.num_structural = nstruct;
  sol->basis.num_rows = m;
  sol->basis.basic = eng.basis;
  sol->basis.status.resize(nstruct + m);
  for (int j = 0; j < nstruct + m; ++j) {
    sol->basis.status[j] = static_cast<unsigned char>(eng.status[j]);
  }
  return true;
}

}  // namespace

Result<Solution> SimplexSolver::SolveRevised(const Model& model,
                                             bool cross_check) const {
#ifdef PROSPECTOR_LP_CROSSCHECK
  cross_check = true;
#endif
  PROSPECTOR_SPAN("lp.solve_revised");
  PROSPECTOR_RETURN_IF_ERROR(model.Validate());
  PROSPECTOR_RETURN_IF_ERROR(
      internal::CheckTableauBudget(model, options_.max_tableau_bytes));

  Solution sol;
  if (!RevisedAttempt(model, options_, &sol)) {
    // Numerical breakdown (singular refactorization); the dense oracle is
    // always available for any model the budget guard accepted.
    PROSPECTOR_COUNTER_ADD("lp.revised_fallbacks", 1);
    return SolveDense(model);
  }
  PROSPECTOR_COUNTER_ADD("lp.revised_solves", 1);
  internal::RecordSolveMetrics(sol);
  if (!cross_check) return sol;

  auto dense = SolveDense(model);
  if (!dense.ok()) return dense;
  const Solution& c = dense.value();
  const double scale =
      std::max({1.0, std::abs(c.objective), std::abs(sol.objective)});
  const bool status_match = c.status == sol.status;
  const bool objective_match =
      sol.status != SolveStatus::kOptimal ||
      std::abs(c.objective - sol.objective) <= 1e-6 * scale;
  if (!status_match || !objective_match) {
    std::fprintf(stderr,
                 "lp: revised cross-check failed: revised %s obj=%.12g vs "
                 "dense %s obj=%.12g (rows=%d cols=%d)\n",
                 ToString(sol.status), sol.objective, ToString(c.status),
                 c.objective, model.num_rows(), model.num_variables());
    std::abort();
  }
  // Return the dense solution so every downstream decision is bit-identical
  // to a dense-only pipeline.
  return dense;
}

}  // namespace lp
}  // namespace prospector
