#include "src/service/api.h"

#include <cstdio>

namespace prospector {
namespace service {
namespace {

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

const char* AdmitRejectName(AdmitReject reject) {
  switch (reject) {
    case AdmitReject::kNone:
      return "none";
    case AdmitReject::kUnknownDeployment:
      return "unknown_deployment";
    case AdmitReject::kInvalidSpec:
      return "invalid_spec";
    case AdmitReject::kTenantQueryQuota:
      return "tenant_query_quota";
    case AdmitReject::kTenantEnergyQuota:
      return "tenant_energy_quota";
    case AdmitReject::kQueueFull:
      return "queue_full";
  }
  return "unknown";
}

std::string FleetStatusJson(const FleetStatus& s) {
  std::string out = "{";
  out += "\"epoch\": " + std::to_string(s.epoch);
  out += ", \"deployments\": " + std::to_string(s.deployments);
  out += ", \"standing_queries\": " + std::to_string(s.standing_queries);
  out += ", \"pending_requests\": " + std::to_string(s.pending_requests);
  out += ", \"admits\": " + std::to_string(s.admits);
  out += ", \"retires\": " + std::to_string(s.retires);
  out += ", \"rejects\": " + std::to_string(s.rejects);
  out += ", \"rejects_by_kind\": {";
  bool first = true;
  for (int i = 0; i < kAdmitRejectKinds; ++i) {
    if (i == static_cast<int>(AdmitReject::kNone)) continue;
    if (!first) out += ", ";
    first = false;
    out += std::string("\"") + AdmitRejectName(static_cast<AdmitReject>(i)) +
           "\": " + std::to_string(s.rejects_by_kind[static_cast<size_t>(i)]);
  }
  out += "}";
  out += ", \"total_energy_mj\": " + FormatDouble(s.total_energy_mj);
  out += ", \"per_deployment\": [";
  first = true;
  for (const DeploymentStatus& d : s.per_deployment) {
    if (!first) out += ", ";
    first = false;
    out += "{\"deployment\": " + std::to_string(d.deployment_id);
    out += ", \"nodes\": " + std::to_string(d.num_nodes);
    out += ", \"standing_queries\": " + std::to_string(d.standing_queries);
    out += ", \"epoch\": " + std::to_string(d.epoch);
    out += ", \"rebuilds\": " + std::to_string(d.rebuilds);
    out += ", \"total_energy_mj\": " + FormatDouble(d.total_energy_mj) + "}";
  }
  out += "], \"per_tenant\": [";
  first = true;
  for (const TenantStatus& t : s.per_tenant) {
    if (!first) out += ", ";
    first = false;
    out += "{\"tenant\": " + std::to_string(t.tenant_id);
    out += ", \"standing_queries\": " + std::to_string(t.standing_queries);
    out += ", \"admitted_budget_mj\": " + FormatDouble(t.admitted_budget_mj);
    out += ", \"admits\": " + std::to_string(t.admits);
    out += ", \"rejects\": " + std::to_string(t.rejects);
    out += ", \"attributed_energy_mj\": " +
           FormatDouble(t.attributed_energy_mj) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace service
}  // namespace prospector
