#include "src/service/quota.h"

namespace prospector {
namespace service {

void QuotaLedger::SetQuota(int tenant_id, TenantQuota quota) {
  std::lock_guard<std::mutex> lock(mu_);
  quotas_[tenant_id] = quota;
}

TenantQuota QuotaLedger::QuotaFor(int tenant_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = quotas_.find(tenant_id);
  return it != quotas_.end() ? it->second : default_;
}

AdmitReject QuotaLedger::Reserve(int tenant_id, double budget_mj,
                                 std::string* message) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto qit = quotas_.find(tenant_id);
  const TenantQuota quota = qit != quotas_.end() ? qit->second : default_;
  Usage& usage = usage_[tenant_id];
  if (quota.max_standing_queries > 0 &&
      usage.standing >= quota.max_standing_queries) {
    ++usage.rejects;
    if (message != nullptr) {
      *message = "tenant " + std::to_string(tenant_id) + " at its quota of " +
                 std::to_string(quota.max_standing_queries) +
                 " standing queries";
    }
    return AdmitReject::kTenantQueryQuota;
  }
  if (quota.max_energy_mj_per_epoch > 0.0 &&
      usage.budget_mj + budget_mj > quota.max_energy_mj_per_epoch) {
    ++usage.rejects;
    if (message != nullptr) {
      *message = "tenant " + std::to_string(tenant_id) +
                 " energy cap exceeded: " + std::to_string(usage.budget_mj) +
                 " + " + std::to_string(budget_mj) + " > " +
                 std::to_string(quota.max_energy_mj_per_epoch) + " mJ/epoch";
    }
    return AdmitReject::kTenantEnergyQuota;
  }
  ++usage.standing;
  usage.budget_mj += budget_mj;
  ++usage.admits;
  return AdmitReject::kNone;
}

void QuotaLedger::Release(int tenant_id, double budget_mj) {
  std::lock_guard<std::mutex> lock(mu_);
  Usage& usage = usage_[tenant_id];
  if (usage.standing > 0) --usage.standing;
  usage.budget_mj -= budget_mj;
  if (usage.budget_mj < 0.0) usage.budget_mj = 0.0;
}

void QuotaLedger::MeterEnergy(int tenant_id, double energy_mj) {
  std::lock_guard<std::mutex> lock(mu_);
  usage_[tenant_id].energy_mj += energy_mj;
}

QuotaLedger::Usage QuotaLedger::UsageFor(int tenant_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = usage_.find(tenant_id);
  return it != usage_.end() ? it->second : Usage{};
}

std::vector<std::pair<int, QuotaLedger::Usage>> QuotaLedger::AllUsage() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {usage_.begin(), usage_.end()};
}

}  // namespace service
}  // namespace prospector
