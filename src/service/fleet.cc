#include "src/service/fleet.h"

#include <algorithm>
#include <utility>

#include "src/obs/obs.h"

namespace prospector {
namespace service {
namespace {

size_t RoundUpPowerOfTwo(int n) {
  size_t v = 1;
  while (v < static_cast<size_t>(std::max(1, n))) v <<= 1;
  return v;
}

/// Splitmix-style finalizer: decorrelates a deployment's truth stream
/// from its engine stream without asking callers for two seeds.
uint64_t TruthSeed(uint64_t seed) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

FleetService::FleetService(FleetOptions options)
    : options_(options),
      pool_(std::max(1, options.scheduler_threads)),
      quota_(options.default_quota) {
  const size_t shards = RoundUpPowerOfTwo(options.index_shards);
  index_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    index_.push_back(std::make_unique<IndexShard>());
  }
  index_mask_ = shards - 1;
}

void FleetService::SetTenantQuota(int tenant_id, TenantQuota quota) {
  quota_.SetQuota(tenant_id, quota);
}

int FleetService::AddDeployment(const net::Topology* topology,
                                net::EnergyModel energy,
                                net::FailureModel failures,
                                core::QueryEngineOptions options, TruthFn truth,
                                uint64_t seed) {
  const int id = static_cast<int>(deployments_.size());
  options.deployment_id = id;
  auto engine = std::make_unique<core::QueryEngine>(topology, energy, failures,
                                                    options, seed);
  deployments_.push_back(std::make_unique<Deployment>(
      id, std::move(engine), std::move(truth), TruthSeed(seed)));
  PROSPECTOR_COUNTER_ADD("service.deployments", 1);
  return id;
}

FleetService::QueryRecord* FleetService::FindRecord(int query_id) {
  if (query_id < 0) return nullptr;
  IndexShard& shard = ShardFor(query_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.records.find(query_id);
  // Records are never erased, so the pointer stays valid after unlock.
  return it != shard.records.end() ? it->second.get() : nullptr;
}

const FleetService::QueryRecord* FleetService::FindRecord(int query_id) const {
  return const_cast<FleetService*>(this)->FindRecord(query_id);
}

void FleetService::CountReject(int tenant_id, AdmitReject reject) {
  rejects_by_kind_[static_cast<size_t>(reject)].fetch_add(
      1, std::memory_order_relaxed);
  switch (reject) {
    case AdmitReject::kNone:
      break;
    case AdmitReject::kUnknownDeployment:
      PROSPECTOR_COUNTER_ADD("service.rejects.unknown_deployment", 1);
      break;
    case AdmitReject::kInvalidSpec:
      PROSPECTOR_COUNTER_ADD("service.rejects.invalid_spec", 1);
      break;
    case AdmitReject::kTenantQueryQuota:
      PROSPECTOR_COUNTER_ADD("service.rejects.tenant_query_quota", 1);
      break;
    case AdmitReject::kTenantEnergyQuota:
      PROSPECTOR_COUNTER_ADD("service.rejects.tenant_energy_quota", 1);
      break;
    case AdmitReject::kQueueFull:
      PROSPECTOR_COUNTER_ADD("service.rejects.queue_full", 1);
      break;
  }
  PROSPECTOR_FLIGHT(kNote, "service.reject", -1, tenant_id,
                    static_cast<int>(reject));
}

AdmitQueryResponse FleetService::Admit(const AdmitQueryRequest& request) {
  AdmitQueryResponse resp;
  if (request.deployment_id < 0 ||
      request.deployment_id >= num_deployments()) {
    resp.reject = AdmitReject::kUnknownDeployment;
    resp.message = "no deployment with id " +
                   std::to_string(request.deployment_id) + " (fleet has " +
                   std::to_string(num_deployments()) + ")";
    CountReject(request.tenant_id, resp.reject);
    return resp;
  }
  if (request.spec.k <= 0 || request.spec.energy_budget_mj <= 0.0) {
    resp.reject = AdmitReject::kInvalidSpec;
    resp.message = "spec needs k >= 1 and a positive energy budget";
    CountReject(request.tenant_id, resp.reject);
    return resp;
  }

  // Reserve quota before allocating an id: a rejected admission must
  // leave no trace beyond its reject counters.
  const AdmitReject reserved = quota_.Reserve(
      request.tenant_id, request.spec.energy_budget_mj, &resp.message);
  if (reserved != AdmitReject::kNone) {
    resp.reject = reserved;
    CountReject(request.tenant_id, reserved);
    return resp;
  }

  auto record = std::make_unique<QueryRecord>();
  record->deployment_id = request.deployment_id;
  record->tenant_id = request.tenant_id;
  record->budget_mj = request.spec.energy_budget_mj;
  record->spec = request.spec;
  record->spec.tenant_id = request.tenant_id;

  {
    // Capacity check, record insertion, and enqueue are one critical
    // section, so a queued admit always has its record and the pending
    // cap is exact under concurrent admission.
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (options_.max_pending_requests > 0 &&
        queue_.size() >= options_.max_pending_requests) {
      quota_.Release(request.tenant_id, request.spec.energy_budget_mj);
      resp.reject = AdmitReject::kQueueFull;
      resp.message = "admission queue at capacity (" +
                     std::to_string(options_.max_pending_requests) +
                     " pending requests)";
      CountReject(request.tenant_id, resp.reject);
      return resp;
    }
    const int id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
    record->query_id = id;
    resp.query_id = id;
    {
      IndexShard& shard = ShardFor(id);
      std::lock_guard<std::mutex> shard_lock(shard.mu);
      shard.records.emplace(id, std::move(record));
    }
    queue_.push_back({PendingRequest::kAdmit, resp.query_id});
    PROSPECTOR_GAUGE_SET("service.pending_requests",
                         static_cast<double>(queue_.size()));
  }

  admits_.fetch_add(1, std::memory_order_relaxed);
  PROSPECTOR_COUNTER_ADD("service.admits", 1);
  PROSPECTOR_FLIGHT(kNote, "service.admit", resp.query_id,
                    request.deployment_id, request.tenant_id);
  resp.admitted = true;
  return resp;
}

RetireQueryResponse FleetService::Retire(const RetireQueryRequest& request) {
  RetireQueryResponse resp;
  QueryRecord* record = FindRecord(request.query_id);
  if (record == nullptr) {
    resp.message = "unknown query id " + std::to_string(request.query_id);
    return resp;
  }
  {
    std::lock_guard<std::mutex> lock(record->mu);
    if (request.tenant_id >= 0 && request.tenant_id != record->tenant_id) {
      resp.message = "query " + std::to_string(request.query_id) +
                     " belongs to tenant " +
                     std::to_string(record->tenant_id);
      return resp;
    }
    if (record->phase == QueryPhase::kRetireQueued ||
        record->phase == QueryPhase::kRetired) {
      resp.message = "query " + std::to_string(request.query_id) +
                     " already retired";
      return resp;
    }
    record->phase = QueryPhase::kRetireQueued;
  }
  {
    // Retirements bypass the admission cap — they shrink the fleet.
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back({PendingRequest::kRetire, request.query_id});
  }
  PROSPECTOR_COUNTER_ADD("service.retire_requests", 1);
  PROSPECTOR_FLIGHT(kNote, "service.retire", request.query_id,
                    record->deployment_id, record->tenant_id);
  resp.retired = true;
  resp.message = "retires at the next epoch boundary";
  return resp;
}

PollAnswersResponse FleetService::Poll(const PollAnswersRequest& request) {
  PollAnswersResponse resp;
  QueryRecord* record = FindRecord(request.query_id);
  if (record == nullptr) return resp;
  std::lock_guard<std::mutex> lock(record->mu);
  resp.known_query = true;
  resp.active = record->phase != QueryPhase::kRetired;
  resp.dropped = record->dropped;
  record->dropped = 0;
  size_t take = record->ring.size();
  if (request.max_answers > 0) {
    take = std::min(take, static_cast<size_t>(request.max_answers));
  }
  resp.answers.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    resp.answers.push_back(std::move(record->ring.front()));
    record->ring.pop_front();
  }
  return resp;
}

void FleetService::ApplyPending(FleetEpochReport* report) {
  std::deque<PendingRequest> batch;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    batch.swap(queue_);
    PROSPECTOR_GAUGE_SET("service.pending_requests", 0.0);
  }
  for (const PendingRequest& req : batch) {
    QueryRecord* record = FindRecord(req.query_id);
    if (record == nullptr) continue;  // unreachable: records never erase
    std::lock_guard<std::mutex> lock(record->mu);
    Deployment& dep = *deployments_[static_cast<size_t>(record->deployment_id)];
    if (req.kind == PendingRequest::kAdmit) {
      auto added = dep.engine->AddQueryWithId(req.query_id, record->spec);
      if (!added.ok()) {
        // Cannot happen (fleet ids are unique), but fail the query loudly
        // rather than strand its reservation.
        record->phase = QueryPhase::kRetired;
        quota_.Release(record->tenant_id, record->budget_mj);
        PROSPECTOR_COUNTER_ADD("service.admit_apply_failures", 1);
        continue;
      }
      // A retire queued behind this admit keeps the kRetireQueued phase;
      // it applies later in this same batch.
      if (record->phase == QueryPhase::kPending) {
        record->phase = QueryPhase::kActive;
      }
      ++report->applied_admits;
    } else {
      if (record->phase != QueryPhase::kRetireQueued) continue;
      dep.engine->RemoveQuery(req.query_id);
      record->phase = QueryPhase::kRetired;
      quota_.Release(record->tenant_id, record->budget_mj);
      retires_.fetch_add(1, std::memory_order_relaxed);
      PROSPECTOR_COUNTER_ADD("service.retires", 1);
      ++report->applied_retires;
    }
  }
}

Result<FleetEpochReport> FleetService::RunEpoch() {
  const long long epoch = epoch_.fetch_add(1, std::memory_order_acq_rel);
  FleetEpochReport report;
  report.epoch = epoch;
  ApplyPending(&report);

  using TickResult = core::QueryEngine::TickResult;
  const int n = num_deployments();
  std::vector<Result<TickResult>> ticks(
      static_cast<size_t>(n),
      Result<TickResult>(Status::Internal("not ticked")));
  auto tick_range = [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      Deployment& dep = *deployments_[static_cast<size_t>(i)];
      ticks[static_cast<size_t>(i)] = dep.engine->Tick(dep.truth(&dep.truth_rng));
    }
  };
  // Deployments share no mutable state, so batching them across the pool
  // is bit-identical to the serial loop (see DESIGN.md, "Fleet service").
  if (pool_.num_threads() > 1) {
    pool_.ParallelFor(n, tick_range);
  } else {
    tick_range(0, n);
  }

  // Serial demux in deployment order: answers into poll rings, realized
  // energy onto tenant meters.
  for (int i = 0; i < n; ++i) {
    Result<TickResult>& tick = ticks[static_cast<size_t>(i)];
    if (!tick.ok()) {
      return Status::Internal("deployment " + std::to_string(i) +
                              " failed at fleet epoch " +
                              std::to_string(epoch) + ": " +
                              tick.status().ToString());
    }
    const TickResult& result = tick.value();
    report.energy_mj += result.energy_mj;
    if (result.degraded) ++report.degraded_deployments;
    if (result.rebuilt) ++report.rebuilt_deployments;
    for (const auto& qr : result.per_query) {
      QueryRecord* record = FindRecord(qr.query_id);
      if (record == nullptr) continue;  // directly-registered query
      quota_.MeterEnergy(record->tenant_id, qr.energy_mj);
      if (qr.kind != core::QueryEngine::QueryEpochKind::kQuery &&
          qr.kind != core::QueryEngine::QueryEpochKind::kAudit) {
        continue;  // bootstrap/explore epochs carry no answer
      }
      std::lock_guard<std::mutex> lock(record->mu);
      if (options_.answer_ring_capacity > 0 &&
          record->ring.size() >= options_.answer_ring_capacity) {
        record->ring.pop_front();
        ++record->dropped;
      }
      AnswerRecord answer;
      answer.epoch = epoch;
      answer.kind = qr.kind;
      answer.answer = qr.answer;
      answer.recall = qr.recall;
      answer.energy_mj = qr.energy_mj;
      answer.health = qr.health;
      record->ring.push_back(std::move(answer));
    }
  }

  PROSPECTOR_COUNTER_ADD("service.epochs", 1);
  PROSPECTOR_FLIGHT(kNote, "service.epoch", -1,
                    report.applied_admits + report.applied_retires,
                    report.energy_mj);
  return report;
}

Result<FleetEpochReport> FleetService::RunEpochs(int n) {
  if (n <= 0) return Status::InvalidArgument("RunEpochs needs n >= 1");
  FleetEpochReport last;
  for (int i = 0; i < n; ++i) {
    auto report = RunEpoch();
    if (!report.ok()) return report.status();
    last = *report;
  }
  return last;
}

FleetStatus FleetService::Snapshot() const {
  FleetStatus s;
  s.epoch = epoch_.load(std::memory_order_acquire);
  s.deployments = num_deployments();
  s.admits = admits_.load(std::memory_order_relaxed);
  s.retires = retires_.load(std::memory_order_relaxed);
  for (int i = 0; i < kAdmitRejectKinds; ++i) {
    const long long r =
        rejects_by_kind_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    s.rejects_by_kind[static_cast<size_t>(i)] = r;
    if (i != static_cast<int>(AdmitReject::kNone)) s.rejects += r;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    s.pending_requests = static_cast<int>(queue_.size());
  }
  s.per_deployment.reserve(deployments_.size());
  for (const auto& dep : deployments_) {
    DeploymentStatus d;
    d.deployment_id = dep->id;
    d.num_nodes = dep->engine->topology().num_nodes();
    d.standing_queries = dep->engine->num_queries();
    d.epoch = dep->engine->epoch();
    d.rebuilds = dep->engine->rebuilds();
    d.total_energy_mj = dep->engine->total_energy_mj();
    s.standing_queries += d.standing_queries;
    s.total_energy_mj += d.total_energy_mj;
    s.per_deployment.push_back(d);
  }
  for (const auto& [tenant_id, usage] : quota_.AllUsage()) {
    TenantStatus t;
    t.tenant_id = tenant_id;
    t.standing_queries = usage.standing;
    t.admitted_budget_mj = usage.budget_mj;
    t.admits = usage.admits;
    t.rejects = usage.rejects;
    t.attributed_energy_mj = usage.energy_mj;
    s.per_tenant.push_back(t);
  }
  return s;
}

std::vector<core::QueryHealth> FleetService::HealthReport() const {
  std::vector<core::QueryHealth> out;
  for (const auto& dep : deployments_) {
    std::vector<core::QueryHealth> report = dep->engine->HealthReport();
    out.insert(out.end(), report.begin(), report.end());
  }
  return out;
}

const core::QueryEngine& FleetService::deployment(int deployment_id) const {
  return *deployments_.at(static_cast<size_t>(deployment_id))->engine;
}

}  // namespace service
}  // namespace prospector
