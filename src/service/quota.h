#ifndef PROSPECTOR_SERVICE_QUOTA_H_
#define PROSPECTOR_SERVICE_QUOTA_H_

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/service/api.h"

namespace prospector {
namespace service {

/// Per-tenant admission limits. A zero field disarms that limit.
struct TenantQuota {
  /// Maximum standing (pending + active) queries.
  int max_standing_queries = 0;
  /// Cap on the sum of standing queries' per-epoch energy budgets, mJ —
  /// the tenant's worst-case planned draw per epoch across the fleet.
  double max_energy_mj_per_epoch = 0.0;
};

/// Check-and-reserve accounting behind admission control. Reservations
/// are taken synchronously at Admit() time — before the query activates —
/// so concurrent admissions cannot both squeeze under a cap; they are
/// released when the retirement applies at an epoch boundary.
///
/// The ledger is pure bookkeeping: obs metering (service.rejects.<kind>
/// counters etc.) stays in FleetService so the ledger is trivially
/// testable.
class QuotaLedger {
 public:
  explicit QuotaLedger(TenantQuota default_quota = {})
      : default_(default_quota) {}

  /// Per-tenant override of the default quota.
  void SetQuota(int tenant_id, TenantQuota quota);
  TenantQuota QuotaFor(int tenant_id) const;

  /// Admission check: reserves one standing query and `budget_mj` of the
  /// tenant's energy cap, or reports the typed reason it cannot. On
  /// reject, nothing is reserved and the tenant's reject count bumps.
  AdmitReject Reserve(int tenant_id, double budget_mj, std::string* message);

  /// Releases one standing query and its budget (retirement applied, or
  /// an admission that failed downstream).
  void Release(int tenant_id, double budget_mj);

  /// Meters realized attributed energy for status reporting.
  void MeterEnergy(int tenant_id, double energy_mj);

  struct Usage {
    int standing = 0;
    double budget_mj = 0.0;
    long long admits = 0;
    long long rejects = 0;
    double energy_mj = 0.0;
  };
  Usage UsageFor(int tenant_id) const;
  /// Every tenant ever seen, ascending id.
  std::vector<std::pair<int, Usage>> AllUsage() const;

 private:
  mutable std::mutex mu_;
  TenantQuota default_;
  std::map<int, TenantQuota> quotas_;
  std::map<int, Usage> usage_;
};

}  // namespace service
}  // namespace prospector

#endif  // PROSPECTOR_SERVICE_QUOTA_H_
