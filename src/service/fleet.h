#ifndef PROSPECTOR_SERVICE_FLEET_H_
#define PROSPECTOR_SERVICE_FLEET_H_

#include <array>
#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/query_engine.h"
#include "src/service/api.h"
#include "src/service/quota.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace prospector {
namespace service {

struct FleetOptions {
  /// Epoch scheduler width: deployments are batched onto a ThreadPool of
  /// this many workers each epoch. <= 1 ticks serially; either way the
  /// scheduler output is bit-identical (see DESIGN.md, "Fleet service").
  int scheduler_threads = 1;
  /// Shards of the service's query index (query id -> record), rounded up
  /// to a power of two.
  int index_shards = 64;
  /// Buffered answers per query; on overflow the oldest drops and the
  /// next poll reports how many were lost.
  size_t answer_ring_capacity = 32;
  /// Admission backpressure: admits are rejected (kQueueFull) while this
  /// many requests await the next epoch boundary. 0 = unlimited.
  size_t max_pending_requests = 4096;
  /// Applied to tenants without an explicit SetTenantQuota override.
  TenantQuota default_quota;
};

/// What one fleet epoch did, aggregated across deployments.
struct FleetEpochReport {
  long long epoch = -1;
  int applied_admits = 0;
  int applied_retires = 0;
  double energy_mj = 0.0;  ///< audited fleet-wide radio energy this epoch
  int degraded_deployments = 0;
  int rebuilt_deployments = 0;
};

/// The fleet-scale serving layer: many independent core::QueryEngine
/// deployments behind one request/response API, multiplexing thousands of
/// standing queries from many tenants (see DESIGN.md, "Fleet service").
///
/// Request lifecycle (the per-request state machine):
///
///   Admit() --------> kPending --(epoch boundary)--> kActive
///     |  validation + quota reservation are synchronous; activation is
///     |  deferred so every epoch sees a stable query population.
///   Retire() -------> kRetireQueued --(epoch boundary)--> kRetired
///
/// Scheduling: RunEpoch() first applies queued requests in submission
/// order, then ticks every deployment — batched over the worker pool in
/// stable deployment order — then demultiplexes answers into per-query
/// poll rings serially. Deployments share no mutable state (each engine
/// owns its simulator, RNG, and truth stream), so the scheduler's output
/// is bit-identical to ticking the same deployments sequentially.
///
/// Query ids are allocated from a single fleet-wide counter and are never
/// reused, on any deployment, ever (QueryRegistry burns retired ids).
class FleetService {
 public:
  /// Produces one epoch's ground-truth readings for a deployment. Each
  /// deployment draws from its own Rng, so truth streams are independent
  /// of scheduling.
  using TruthFn = std::function<std::vector<double>(Rng*)>;

  explicit FleetService(FleetOptions options = {});

  FleetService(const FleetService&) = delete;
  FleetService& operator=(const FleetService&) = delete;

  /// Per-tenant override of options.default_quota.
  void SetTenantQuota(int tenant_id, TenantQuota quota);

  /// Registers a deployment (an engine over `topology`, which the caller
  /// keeps alive). Registration order fixes the deployment id and the
  /// scheduler's tick order. The engine seeds from `seed`; the truth
  /// stream seeds from a decorrelated derivative of it.
  int AddDeployment(const net::Topology* topology, net::EnergyModel energy,
                    net::FailureModel failures,
                    core::QueryEngineOptions options, TruthFn truth,
                    uint64_t seed);

  // --- request/response API ---
  AdmitQueryResponse Admit(const AdmitQueryRequest& request);
  RetireQueryResponse Retire(const RetireQueryRequest& request);
  PollAnswersResponse Poll(const PollAnswersRequest& request);

  /// Applies queued admits/retires, then runs one epoch on every
  /// deployment. Fails on the first deployment tick error (in deployment
  /// order), with the fleet stopped at that epoch.
  Result<FleetEpochReport> RunEpoch();
  /// Runs `n` epochs; returns the last report.
  Result<FleetEpochReport> RunEpochs(int n);

  /// One consistent snapshot of fleet, deployment, and tenant state.
  FleetStatus Snapshot() const;

  /// Health of every standing query across the fleet, tagged with
  /// deployment and tenant ids, in (deployment, query id) order — feed to
  /// core::RollupByTenant / RollupByDeployment / FleetHealthJson.
  std::vector<core::QueryHealth> HealthReport() const;

  int num_deployments() const { return static_cast<int>(deployments_.size()); }
  long long epochs_run() const { return epoch_.load(std::memory_order_acquire); }
  /// Direct read access to one deployment's engine (aborts on bad id).
  const core::QueryEngine& deployment(int deployment_id) const;

 private:
  enum class QueryPhase { kPending, kActive, kRetireQueued, kRetired };

  /// Service-side record of one query: routing (deployment, tenant), the
  /// spec awaiting activation, and the answer ring Poll() drains.
  struct QueryRecord {
    int query_id = -1;
    int deployment_id = -1;
    int tenant_id = -1;
    double budget_mj = 0.0;
    core::QuerySpec spec;
    /// Guards phase + ring: Poll() runs on caller threads while the
    /// scheduler's serial demux appends.
    std::mutex mu;
    QueryPhase phase = QueryPhase::kPending;
    std::deque<AnswerRecord> ring;
    long long dropped = 0;
  };

  struct IndexShard {
    mutable std::mutex mu;
    std::unordered_map<int, std::unique_ptr<QueryRecord>> records;
  };

  struct Deployment {
    int id = -1;
    std::unique_ptr<core::QueryEngine> engine;
    TruthFn truth;
    Rng truth_rng;
    Deployment(int id, std::unique_ptr<core::QueryEngine> engine, TruthFn t,
               uint64_t truth_seed)
        : id(id),
          engine(std::move(engine)),
          truth(std::move(t)),
          truth_rng(truth_seed) {}
  };

  struct PendingRequest {
    enum Kind { kAdmit, kRetire } kind = kAdmit;
    int query_id = -1;
  };

  IndexShard& ShardFor(int query_id) {
    return *index_[static_cast<size_t>(query_id) & index_mask_];
  }
  const IndexShard& ShardFor(int query_id) const {
    return *index_[static_cast<size_t>(query_id) & index_mask_];
  }
  QueryRecord* FindRecord(int query_id);
  const QueryRecord* FindRecord(int query_id) const;
  void CountReject(int tenant_id, AdmitReject reject);
  /// Applies queued requests in submission order (serial, epoch boundary).
  void ApplyPending(FleetEpochReport* report);

  FleetOptions options_;
  util::ThreadPool pool_;
  QuotaLedger quota_;
  std::vector<std::unique_ptr<Deployment>> deployments_;

  /// Fleet-wide query id allocator; ids are never reused.
  std::atomic<int> next_query_id_{0};
  std::atomic<long long> epoch_{0};

  std::vector<std::unique_ptr<IndexShard>> index_;
  size_t index_mask_ = 0;

  mutable std::mutex queue_mu_;
  std::deque<PendingRequest> queue_;

  // Fleet-lifetime counters for Snapshot(); also mirrored to obs.
  std::atomic<long long> admits_{0};
  std::atomic<long long> retires_{0};
  std::array<std::atomic<long long>, kAdmitRejectKinds> rejects_by_kind_{};
};

}  // namespace service
}  // namespace prospector

#endif  // PROSPECTOR_SERVICE_FLEET_H_
