#ifndef PROSPECTOR_SERVICE_API_H_
#define PROSPECTOR_SERVICE_API_H_

#include <array>
#include <string>
#include <vector>

#include "src/core/health.h"
#include "src/core/query_engine.h"

namespace prospector {
namespace service {

/// Why an admission was refused. Typed so callers (and tests) can branch
/// on the cause instead of parsing messages; every kind is also metered
/// through obs as service.rejects.<kind>.
enum class AdmitReject {
  kNone = 0,
  kUnknownDeployment,  ///< deployment_id names no registered deployment
  kInvalidSpec,        ///< k <= 0 or non-positive energy budget
  kTenantQueryQuota,   ///< tenant at max standing queries
  kTenantEnergyQuota,  ///< admitted budgets would exceed the tenant cap
  kQueueFull,          ///< admission backpressure: pending queue at cap
};
inline constexpr int kAdmitRejectKinds = 6;

const char* AdmitRejectName(AdmitReject reject);

/// Admit one standing top-k query onto one deployment, on behalf of a
/// tenant. Validation and quota reservation happen synchronously; the
/// query starts ticking at the next epoch boundary.
struct AdmitQueryRequest {
  int deployment_id = -1;
  int tenant_id = 0;
  /// spec.tenant_id is overwritten by the service from `tenant_id`.
  core::QuerySpec spec;
};

struct AdmitQueryResponse {
  /// True: the query holds a globally unique id, its quota is reserved,
  /// and it activates at the next epoch boundary. False: see `reject`.
  bool admitted = false;
  int query_id = -1;
  AdmitReject reject = AdmitReject::kNone;
  std::string message;
};

/// Retire a standing query. `tenant_id >= 0` asserts ownership (tenants
/// cannot retire each other's queries); -1 is the administrative path.
struct RetireQueryRequest {
  int query_id = -1;
  int tenant_id = -1;
};

struct RetireQueryResponse {
  /// True: retirement is queued and applies at the next epoch boundary.
  /// Already-buffered answers stay pollable after that.
  bool retired = false;
  std::string message;
};

/// One answer-bearing epoch of one query, as buffered for polling.
struct AnswerRecord {
  long long epoch = -1;  ///< fleet epoch that produced the answer
  core::QueryEngine::QueryEpochKind kind =
      core::QueryEngine::QueryEpochKind::kQuery;
  std::vector<core::Reading> answer;  ///< construction-time node ids
  double recall = -1.0;
  double energy_mj = 0.0;  ///< the query's attributed share that epoch
  core::HealthStatus health = core::HealthStatus::kUnknown;
};

struct PollAnswersRequest {
  int query_id = -1;
  /// Upper bound on answers returned; 0 drains everything buffered.
  int max_answers = 0;
};

struct PollAnswersResponse {
  bool known_query = false;
  /// Still standing (pending or active); false once retired. Retired
  /// queries keep their buffered answers until drained.
  bool active = false;
  std::vector<AnswerRecord> answers;  ///< oldest first
  /// Ring overflow: answers dropped (oldest-first) since the last poll.
  long long dropped = 0;
};

struct TenantStatus {
  int tenant_id = -1;
  int standing_queries = 0;  ///< pending + active (quota-reserved)
  double admitted_budget_mj = 0.0;  ///< sum of standing per-epoch budgets
  long long admits = 0;
  long long rejects = 0;
  double attributed_energy_mj = 0.0;  ///< realized, summed over epochs
};

struct DeploymentStatus {
  int deployment_id = -1;
  int num_nodes = 0;
  int standing_queries = 0;
  int epoch = 0;  ///< engine-local epoch count
  int rebuilds = 0;
  double total_energy_mj = 0.0;
};

/// One consistent snapshot of the whole fleet.
struct FleetStatus {
  long long epoch = 0;  ///< fleet epochs run
  int deployments = 0;
  int standing_queries = 0;
  int pending_requests = 0;  ///< queued admits/retires awaiting the boundary
  long long admits = 0;   ///< requests accepted into the queue, ever
  long long retires = 0;  ///< retirements applied, ever
  long long rejects = 0;
  /// Indexed by static_cast<int>(AdmitReject).
  std::array<long long, kAdmitRejectKinds> rejects_by_kind{};
  double total_energy_mj = 0.0;
  std::vector<DeploymentStatus> per_deployment;  ///< ascending deployment id
  std::vector<TenantStatus> per_tenant;          ///< ascending tenant id
};

/// Compact deterministic JSON rendering of a fleet snapshot (obsdump's
/// --fleet-demo and the bench artifacts embed this).
std::string FleetStatusJson(const FleetStatus& status);

}  // namespace service
}  // namespace prospector

#endif  // PROSPECTOR_SERVICE_API_H_
