#ifndef PROSPECTOR_SAMPLING_SAMPLE_SET_H_
#define PROSPECTOR_SAMPLING_SAMPLE_SET_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/data/trace.h"
#include "src/util/stats.h"

namespace prospector {
namespace sampling {

/// Maps one network-wide reading vector to the node ids that "contribute to
/// the answer" in that sample — the 1-entries of one row of the Boolean
/// matrix Q of Section 3. For a top-k query these are the k largest nodes;
/// the generalization to selection/quantile queries plugs in a different
/// function (Section 3: "this approach can be easily generalized to queries
/// that return subsets of all sensor values").
using ContributorFn =
    std::function<std::vector<int>(const std::vector<double>&)>;

/// What happened to a SampleSet between a remembered version and now
/// (see SampleSet::DeltaSince). `valid` means the change since the
/// reference version is a pure append of `added` rows — the only shape an
/// incremental consumer (cached scans, patched LP blocks) can apply
/// without re-reading the window. Evictions shift row indices and remaps
/// rewrite every row, so both report `valid == false`; the counts are
/// still filled in when the retained history can determine them.
struct SampleSetDelta {
  bool valid = false;
  int added = 0;
  int evicted = 0;
};

/// The sample store at the heart of sampling-based query planning
/// (Section 3): a sliding window of past network-wide readings plus their
/// Boolean contribution rows and maintained column sums.
///
/// The paper notes that planners without proofs only need the column sums;
/// we additionally retain raw values because PROSPECTOR Proof needs the
/// smaller(j, i) relation, and because windowed maintenance ("expire old
/// samples") requires knowing which entries leave.
class SampleSet {
 public:
  /// `window` = 0 keeps all samples; otherwise the most recent `window`.
  SampleSet(int num_nodes, ContributorFn contributor, size_t window = 0);

  /// Standard top-k contributor (ties broken toward lower node id).
  static SampleSet ForTopK(int num_nodes, int k, size_t window = 0);
  /// Selection query: nodes with value > threshold contribute.
  static SampleSet ForSelection(int num_nodes, double threshold,
                                size_t window = 0);
  /// Quantile query: the single node holding the q-quantile value
  /// contributes (q in [0,1]; q=0.5 is the median).
  static SampleSet ForQuantile(int num_nodes, double quantile,
                               size_t window = 0);

  /// Adds one sample (a full network reading), evicting the oldest when
  /// the window overflows.
  void Add(std::vector<double> values);

  /// Bulk-loads every epoch of a trace (already imputed).
  void AddTrace(const data::Trace& trace);

  /// A new SampleSet (same contributor) holding only the most recent
  /// `count` samples — e.g. to bound the size of the proof LP, which grows
  /// with #samples x #nodes x tree height.
  SampleSet Recent(int count) const;

  /// Re-indexes every sample after a topology rebuild (Section 4.4):
  /// `new_id[i]` is node i's id in the rebuilt network, -1 for removed
  /// nodes (their readings are dropped). Contribution rows are recomputed
  /// with `contributor` (pass one whose captured state uses the new ids),
  /// or with the existing contributor when omitted — valid for index-free
  /// contributors such as top-k and selection.
  SampleSet Remapped(const std::vector<int>& new_id, int new_num_nodes,
                     ContributorFn contributor = nullptr) const;

  int num_nodes() const { return num_nodes_; }
  int num_samples() const { return static_cast<int>(samples_.size()); }

  /// Monotonic modification stamp: bumped by every Add (and therefore by
  /// AddTrace), and fresh for the sets Remapped/Recent return. Stamps are
  /// drawn from one process-wide counter, so a (id(), version()) pair
  /// uniquely identifies the contents of a window — the cache key the
  /// planning workspace uses.
  uint64_t version() const { return version_; }
  /// Identity of this window's lineage: the stamp the set was created
  /// with. Remapped/Recent results are new lineages; versions from one
  /// lineage mean nothing to another (DeltaSince reports them invalid).
  uint64_t id() const { return created_version_; }
  /// The stamp the Add that created sample j assigned. Stable while the
  /// sample stays in the window (indices shift on eviction; stamps do
  /// not), which is what lets cached per-sample LP blocks be reconciled
  /// against the current window after it slides.
  uint64_t sample_stamp(int j) const { return samples_[j].stamp; }

  /// Describes the change since `version` (a value this set's version()
  /// returned earlier). Pure appends are valid deltas; evictions and
  /// remaps invalidate (see SampleSetDelta). Versions from before this
  /// set's creation — e.g. remembered across a Remapped — are invalid by
  /// construction.
  SampleSetDelta DeltaSince(uint64_t version) const;

  double value(int j, int i) const { return samples_[j].values[i]; }
  const std::vector<double>& sample_values(int j) const {
    return samples_[j].values;
  }

  /// ones(j) of the paper: contributing node ids in sample j, in
  /// contribution order (for top-k: descending value).
  const std::vector<int>& ones(int j) const { return samples_[j].ones; }

  bool Contributes(int j, int i) const { return samples_[j].mask[i]; }

  /// Column sums of Q: how often each node contributed across the window.
  const std::vector<int>& column_sums() const { return column_sums_; }

  /// Total number of 1-entries across all samples (the best possible
  /// "hits" an omniscient plan could return).
  int total_ones() const { return total_ones_; }

  /// smaller(j, i) membership: does node `other` hold a strictly smaller
  /// value than node `i` in sample j?
  bool IsSmaller(int j, int other, int i) const {
    return samples_[j].values[other] < samples_[j].values[i];
  }

 private:
  struct Entry {
    std::vector<double> values;
    std::vector<int> ones;
    std::vector<char> mask;
    uint64_t stamp = 0;
  };

  /// Evictions older than this many entries are forgotten; DeltaSince
  /// calls reaching past the retained log report invalid (callers rebuild
  /// from scratch, which is always correct).
  static constexpr size_t kEvictionLogCap = 1024;

  int num_nodes_;
  ContributorFn contributor_;
  size_t window_;
  std::deque<Entry> samples_;
  std::vector<int> column_sums_;
  int total_ones_ = 0;
  uint64_t created_version_ = 0;
  uint64_t version_ = 0;
  /// version() values at which a row was evicted, oldest first.
  std::deque<uint64_t> eviction_log_;
  /// Versions at or below this may predate trimmed eviction-log entries.
  uint64_t eviction_log_floor_ = 0;
};

}  // namespace sampling
}  // namespace prospector

#endif  // PROSPECTOR_SAMPLING_SAMPLE_SET_H_
