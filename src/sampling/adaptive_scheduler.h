#ifndef PROSPECTOR_SAMPLING_ADAPTIVE_SCHEDULER_H_
#define PROSPECTOR_SAMPLING_ADAPTIVE_SCHEDULER_H_

#include <cmath>
#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace prospector {
namespace sampling {

/// Chooses the re-sampling rate online with multiplicative weights — the
/// "exploration/exploitation framework from the machine learning
/// literature" (Littlestone & Warmuth's weighted majority) the paper cites
/// for deciding when to spend energy on full-network sweeps (Section 3)
/// and adapting the rate to model drift (Section 4.4).
///
/// Each candidate exploration rate is an expert. Periodically the caller
/// reports the achieved reward (e.g. query accuracy minus an energy
/// penalty for the sweeps spent); the chosen expert's weight is scaled by
/// beta^loss, so persistently poor rates fade and the scheduler tracks
/// the environment's drift speed.
class AdaptiveScheduler {
 public:
  /// `rates` are the candidate exploration probabilities;
  /// `beta` in (0,1) is the weighted-majority demotion factor.
  explicit AdaptiveScheduler(std::vector<double> rates, double beta = 0.7)
      : rates_(std::move(rates)), beta_(beta),
        weights_(rates_.size(), 1.0) {}

  static AdaptiveScheduler Default() {
    return AdaptiveScheduler({0.01, 0.05, 0.15, 0.35});
  }

  int num_arms() const { return static_cast<int>(rates_.size()); }
  double rate(int arm) const { return rates_[arm]; }

  /// Current selection probability of each arm (normalized weights).
  std::vector<double> Probabilities() const {
    std::vector<double> p(weights_);
    double sum = 0.0;
    for (double w : p) sum += w;
    for (double& w : p) w /= sum;
    return p;
  }

  /// Draws an arm according to the current weights.
  int ChooseArm(Rng* rng) const {
    const std::vector<double> p = Probabilities();
    double u = rng->NextDouble();
    for (int a = 0; a < num_arms(); ++a) {
      u -= p[a];
      if (u <= 0.0) return a;
    }
    return num_arms() - 1;
  }

  /// Reports the loss (in [0,1]; 0 = perfect period) of the arm used for
  /// the last period. Weighted-majority update: w *= beta^loss.
  Status ReportLoss(int arm, double loss) {
    if (arm < 0 || arm >= num_arms()) {
      return Status::InvalidArgument("unknown arm");
    }
    if (loss < 0.0 || loss > 1.0) {
      return Status::InvalidArgument("loss must be in [0, 1]");
    }
    weights_[arm] *= std::pow(beta_, loss);
    // Keep weights away from 0 so the scheduler can recover after drift
    // (the standard fixed-share-style floor).
    double sum = 0.0;
    for (double w : weights_) sum += w;
    const double floor = 1e-4 * sum / num_arms();
    for (double& w : weights_) w = std::max(w, floor);
    return Status::OK();
  }

  /// Convenience: reward in [0,1] (1 = perfect) instead of loss.
  Status ReportReward(int arm, double reward) {
    return ReportLoss(arm, 1.0 - reward);
  }

 private:
  std::vector<double> rates_;
  double beta_;
  std::vector<double> weights_;
};

}  // namespace sampling
}  // namespace prospector

#endif  // PROSPECTOR_SAMPLING_ADAPTIVE_SCHEDULER_H_
