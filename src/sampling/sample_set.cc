#include "src/sampling/sample_set.h"

#include <algorithm>
#include <atomic>

namespace prospector {
namespace sampling {
namespace {

// One process-wide stamp source: every SampleSet creation and every Add
// draws a fresh value, so (id, version) pairs are unique across all sets
// and a version can never alias two different window contents.
uint64_t NextStamp() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

SampleSet::SampleSet(int num_nodes, ContributorFn contributor, size_t window)
    : num_nodes_(num_nodes),
      contributor_(std::move(contributor)),
      window_(window),
      column_sums_(num_nodes, 0),
      created_version_(NextStamp()),
      version_(created_version_) {}

SampleSet SampleSet::ForTopK(int num_nodes, int k, size_t window) {
  return SampleSet(
      num_nodes,
      [k](const std::vector<double>& values) { return TopKIndices(values, k); },
      window);
}

SampleSet SampleSet::ForSelection(int num_nodes, double threshold,
                                  size_t window) {
  return SampleSet(
      num_nodes,
      [threshold](const std::vector<double>& values) {
        std::vector<int> out;
        for (size_t i = 0; i < values.size(); ++i) {
          if (values[i] > threshold) out.push_back(static_cast<int>(i));
        }
        return out;
      },
      window);
}

SampleSet SampleSet::ForQuantile(int num_nodes, double quantile,
                                 size_t window) {
  return SampleSet(
      num_nodes,
      [quantile](const std::vector<double>& values) {
        // Index whose value is the q-quantile (nearest-rank). Out-of-range
        // q clamps to [0, 1]: a negative q would wrap through size_t and
        // silently select the maximum.
        double q = quantile;
        if (!(q > 0.0)) q = 0.0;  // also maps NaN to the minimum
        if (q > 1.0) q = 1.0;
        std::vector<int> order(values.size());
        for (size_t i = 0; i < values.size(); ++i) order[i] = static_cast<int>(i);
        std::sort(order.begin(), order.end(), [&](int a, int b) {
          if (values[a] != values[b]) return values[a] < values[b];
          return a < b;
        });
        const size_t rank = static_cast<size_t>(
            q * static_cast<double>(values.size() - 1) + 0.5);
        return std::vector<int>{order[std::min(rank, values.size() - 1)]};
      },
      window);
}

void SampleSet::Add(std::vector<double> values) {
  Entry e;
  e.ones = contributor_(values);
  e.mask.assign(num_nodes_, 0);
  for (int i : e.ones) {
    e.mask[i] = 1;
    ++column_sums_[i];
    ++total_ones_;
  }
  e.values = std::move(values);
  e.stamp = NextStamp();
  version_ = e.stamp;
  samples_.push_back(std::move(e));
  if (window_ > 0 && samples_.size() > window_) {
    for (int i : samples_.front().ones) {
      --column_sums_[i];
      --total_ones_;
    }
    samples_.pop_front();
    eviction_log_.push_back(version_);
    if (eviction_log_.size() > kEvictionLogCap) {
      eviction_log_floor_ = eviction_log_.front();
      eviction_log_.pop_front();
    }
  }
}

SampleSetDelta SampleSet::DeltaSince(uint64_t version) const {
  SampleSetDelta d;
  // Foreign or future versions — including any version remembered before a
  // Remapped/Recent rebuilt the lineage — cannot be described as a delta.
  if (version < created_version_ || version > version_) return d;
  if (version < eviction_log_floor_) return d;  // eviction history trimmed
  for (auto it = eviction_log_.rbegin();
       it != eviction_log_.rend() && *it > version; ++it) {
    ++d.evicted;
  }
  for (auto it = samples_.rbegin();
       it != samples_.rend() && it->stamp > version; ++it) {
    ++d.added;
  }
  // Only a pure append is a usable delta: an eviction shifts the indices
  // of every retained row, so incremental consumers must rebuild.
  d.valid = d.evicted == 0;
  return d;
}

void SampleSet::AddTrace(const data::Trace& trace) {
  for (int t = 0; t < trace.num_epochs(); ++t) Add(trace.epoch(t));
}

SampleSet SampleSet::Remapped(const std::vector<int>& new_id,
                              int new_num_nodes,
                              ContributorFn contributor) const {
  SampleSet out(new_num_nodes,
                contributor ? std::move(contributor) : contributor_, window_);
  for (const Entry& e : samples_) {
    std::vector<double> values(new_num_nodes, 0.0);
    for (int i = 0; i < num_nodes_; ++i) {
      if (new_id[i] >= 0) values[new_id[i]] = e.values[i];
    }
    out.Add(std::move(values));
  }
  return out;
}

SampleSet SampleSet::Recent(int count) const {
  SampleSet out(num_nodes_, contributor_, window_);
  const int start = std::max(0, num_samples() - count);
  for (int j = start; j < num_samples(); ++j) out.Add(samples_[j].values);
  return out;
}

}  // namespace sampling
}  // namespace prospector
