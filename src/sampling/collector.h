#ifndef PROSPECTOR_SAMPLING_COLLECTOR_H_
#define PROSPECTOR_SAMPLING_COLLECTOR_H_

#include <vector>

#include "src/net/simulator.h"
#include "src/sampling/sample_set.h"
#include "src/util/rng.h"

namespace prospector {
namespace sampling {

/// Exploration/exploitation sample acquisition (Section 3): "at randomly
/// chosen timesteps, we spend more energy to collect all values in the
/// network and use them as a sample."
///
/// A full sweep makes every node forward its entire subtree's readings to
/// the root, so its energy cost is one message per edge, each carrying
/// subtree_size(child) values — charged against the simulator's ledger so
/// experiments can amortize sampling cost honestly.
class SampleCollector {
 public:
  explicit SampleCollector(double explore_probability = 0.05)
      : explore_probability_(explore_probability) {}

  /// Should this timestep be an exploration (full-sweep) step?
  bool ShouldExplore(Rng* rng) const {
    return rng->Bernoulli(explore_probability_);
  }

  /// Charges a full network sweep to `sim` and appends `truth` to `samples`.
  /// Returns the energy spent.
  double CollectSample(const std::vector<double>& truth,
                       net::NetworkSimulator* sim, SampleSet* samples) const {
    const net::Topology& topo = sim->topology();
    double spent = 0.0;
    // Trigger broadcast propagates down every internal node.
    for (int u : topo.PreOrder()) {
      if (!topo.is_leaf(u)) spent += sim->Broadcast(u);
    }
    // Collection: every edge carries the child's whole subtree.
    for (int u : topo.PostOrder()) {
      if (u == topo.root()) continue;
      spent += sim->Unicast(u, topo.subtree_size(u));
    }
    samples->Add(truth);
    return spent;
  }

  /// Cost of one sweep without executing it (for planning/amortization).
  double SweepCost(const net::NetworkSimulator& sim) const {
    const net::Topology& topo = sim.topology();
    double cost = 0.0;
    for (int u = 0; u < topo.num_nodes(); ++u) {
      if (!topo.is_leaf(u)) cost += sim.energy_model().BroadcastCost();
      if (u != topo.root()) {
        cost += sim.ExpectedUnicastCost(u, topo.subtree_size(u));
      }
    }
    return cost;
  }

  double explore_probability() const { return explore_probability_; }

 private:
  double explore_probability_;
};

}  // namespace sampling
}  // namespace prospector

#endif  // PROSPECTOR_SAMPLING_COLLECTOR_H_
