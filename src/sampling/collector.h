#ifndef PROSPECTOR_SAMPLING_COLLECTOR_H_
#define PROSPECTOR_SAMPLING_COLLECTOR_H_

#include <algorithm>
#include <vector>

#include "src/net/simulator.h"
#include "src/sampling/sample_set.h"
#include "src/util/rng.h"

namespace prospector {
namespace sampling {

/// What a full sweep actually achieved under faults. Fault-free, every
/// edge delivers and the recorded sample equals the truth vector.
struct SweepReport {
  double energy_mj = 0.0;
  int values_lost = 0;    ///< readings that were in flight and vanished
  bool degraded = false;  ///< any node dead or message dropped
  /// Per child-edge link evidence (index == child node id): a sweep
  /// expects every non-root node to report, so silence here is the
  /// strongest watchdog signal available.
  std::vector<char> edge_expected;
  std::vector<char> edge_delivered;
};

/// Exploration/exploitation sample acquisition (Section 3): "at randomly
/// chosen timesteps, we spend more energy to collect all values in the
/// network and use them as a sample."
///
/// A full sweep makes every node forward its entire subtree's readings to
/// the root, so its energy cost is one message per edge, each carrying
/// subtree_size(child) values — charged against the simulator's ledger so
/// experiments can amortize sampling cost honestly.
class SampleCollector {
 public:
  explicit SampleCollector(double explore_probability = 0.05)
      : explore_probability_(explore_probability) {}

  /// Should this timestep be an exploration (full-sweep) step?
  bool ShouldExplore(Rng* rng) const {
    return rng->Bernoulli(explore_probability_);
  }

  /// Charges a full network sweep to `sim` and appends `truth` to `samples`.
  /// Returns the energy spent. Fault-tolerant: see CollectSampleReport.
  double CollectSample(const std::vector<double>& truth,
                       net::NetworkSimulator* sim, SampleSet* samples) const {
    return CollectSampleReport(truth, sim, samples).energy_mj;
  }

  /// Full sweep with loss accounting. Each node bundles its own reading
  /// with whatever its children actually delivered and sends that bundle
  /// up one message; fault-free this charges exactly one message of
  /// subtree_size(u) values per edge (bit-identical to the historical
  /// sweep). Readings that never reach the root are imputed in the
  /// recorded sample — from `fallback` (typically the previous sample)
  /// when provided, otherwise pessimistically as the minimum delivered
  /// value so a dark subtree cannot fake top-k heat.
  SweepReport CollectSampleReport(
      const std::vector<double>& truth, net::NetworkSimulator* sim,
      SampleSet* samples, const std::vector<double>* fallback = nullptr) const {
    std::vector<double> collected;
    const SweepReport report = CollectSweep(truth, sim, fallback, &collected);
    samples->Add(std::move(collected));
    return report;
  }

  /// The radio half of CollectSampleReport: charges the sweep and writes
  /// the (possibly imputed) network reading into `collected` without
  /// touching any sample window. The multi-query engine uses this to pay
  /// for one sweep and then append the same vector to every registered
  /// query's window — the core radio-sharing move.
  SweepReport CollectSweep(const std::vector<double>& truth,
                           net::NetworkSimulator* sim,
                           const std::vector<double>* fallback,
                           std::vector<double>* collected) const {
    const net::Topology& topo = sim->topology();
    const int n = topo.num_nodes();
    SweepReport report;
    report.edge_expected.assign(n, 0);
    report.edge_delivered.assign(n, 0);
    // Trigger broadcast propagates down every live internal node.
    for (int u : topo.PreOrder()) {
      if (!topo.is_leaf(u) && sim->node_alive(u)) {
        report.energy_mj += sim->Broadcast(u);
      }
    }
    // Collection: each edge carries the values that actually reached the
    // child, plus its own reading.
    std::vector<int> bundle(n, 0);  // values each node delivered upward
    for (int u : topo.PostOrder()) {
      if (u == topo.root()) continue;
      report.edge_expected[u] = 1;  // a sweep visits everyone
      if (!sim->node_alive(u)) {
        // No acquisition, no send. Its children's bundles already failed
        // at their own TryUnicast (the shared endpoint is down).
        report.degraded = true;
        continue;
      }
      int carrying = 1;  // own reading
      for (int c : topo.children(u)) carrying += bundle[c];
      // Corrupted or adversarially deferred bundles count as losses: a
      // sweep records only what arrives intact this epoch (nothing
      // listens for a sweep bundle in a later one).
      const net::DeliveryResult up = sim->TryUnicast(u, carrying);
      report.energy_mj += up.energy_mj;
      if (up.arrived_now()) {
        report.edge_delivered[u] = 1;
        bundle[u] = carrying;
      } else {
        report.values_lost += carrying;
        report.degraded = true;
      }
    }
    // A reading arrives iff every edge on its root path delivered.
    std::vector<char> arrived(n, 1);
    for (int u : topo.PreOrder()) {
      if (u == topo.root()) continue;
      arrived[u] =
          report.edge_delivered[u] && arrived[topo.parent(u)] ? 1 : 0;
    }
    *collected = truth;
    double min_arrived = truth[topo.root()];  // the root always has itself
    for (int u = 0; u < n; ++u) {
      if (arrived[u]) min_arrived = std::min(min_arrived, truth[u]);
    }
    for (int u = 0; u < n; ++u) {
      if (arrived[u]) continue;
      (*collected)[u] =
          (fallback != nullptr && static_cast<int>(fallback->size()) == n)
              ? (*fallback)[u]
              : min_arrived;
    }
    return report;
  }

  /// Cost of one sweep without executing it (for planning/amortization).
  double SweepCost(const net::NetworkSimulator& sim) const {
    const net::Topology& topo = sim.topology();
    double cost = 0.0;
    for (int u = 0; u < topo.num_nodes(); ++u) {
      if (!topo.is_leaf(u)) cost += sim.energy_model().BroadcastCost();
      if (u != topo.root()) {
        cost += sim.ExpectedUnicastCost(u, topo.subtree_size(u));
      }
    }
    return cost;
  }

  double explore_probability() const { return explore_probability_; }

 private:
  double explore_probability_;
};

}  // namespace sampling
}  // namespace prospector

#endif  // PROSPECTOR_SAMPLING_COLLECTOR_H_
